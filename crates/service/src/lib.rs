//! # maps-service
//!
//! The **grid-sharded online pricing service**: the event-driven
//! deployment shape of the MAPS pipeline. Where `maps-simulator` runs an
//! offline batch over a prebuilt [`maps_simulator::GroundTruth`], this
//! crate ingests a *stream* of [`ServiceEvent`]s — worker arrivals and
//! departures, task requests, period ticks — and serves posted prices
//! continuously, the setting the paper actually describes (requesters
//! and workers arrive online; the platform posts one price per grid per
//! period, Sec. 4.2).
//!
//! ## Architecture
//!
//! ```text
//!            WorkerArrive / WorkerDepart / TaskRequest      PeriodTick
//!                              │                                │
//!                    ┌─────────▼──────────┐                    │
//!                    │ deterministic cell │                    │
//!                    │ router (ShardMap)  │                    │
//!                    └┬────────┬─────────┬┘                    │
//!                ┌────▼──┐ ┌───▼───┐ ┌───▼───┐                 │
//!                │shard 0│ │shard 1│ │shard n│  ◄──────────────┘
//!                │ cache │ │ cache │ │ cache │   parallel: apply churn,
//!                └───┬───┘ └───┬───┘ └───┬───┘   per-task k-NN candidates
//!                    └────────┬┴─────────┘
//!                     ┌───────▼────────┐   reduce in shard-id order:
//!                     │  tick reducer  │   merge live ids + candidates by
//!                     │ price · clear  │   the total (distance, id) order,
//!                     │ · lifecycle    │   then price, match, observe
//!                     └────────────────┘
//! ```
//!
//! Each shard owns the disjoint set of grid cells the
//! [`maps_spatial::ShardMap`] assigns it and carries its own
//! [`maps_core::PeriodGraphCache`] (dynamic spatial index + graph
//! arena) over the workers currently located in its cells. Between
//! ticks, events only *stage* state; a [`ServiceEvent::PeriodTick`]
//! fans the staged churn out across shards (rayon), then reduces the
//! per-shard results in shard-id order into the global period view the
//! pricing strategy and the market clearing see.
//!
//! ## The shard-count-invariance contract
//!
//! Replaying any `GroundTruth` through the service ([`replay`]) yields
//! an [`maps_simulator::Outcome`] **bit-identical** to
//! [`maps_simulator::Simulation::run`] — at *any* shard count and any
//! rayon thread count (enforced across 1/2/4/8 shards × 1/2/3/8
//! threads by the `replay_oracle` test and the root proptest churn
//! stream). Three properties carry the proof:
//!
//! 1. **Routing is pure**: cell → shard is `cell.index() % shards`, a
//!    function of nothing but the event itself.
//! 2. **Cross-shard matching merges under a total order**: a task's
//!    candidate workers are each shard's `k` nearest by
//!    `(distance, id)`; that order is independent of bucket layout, so
//!    re-sorting the union and truncating to `k` equals the one-index
//!    query, and the CSR graph builder canonicalizes edge insertion
//!    order. Worker ids are global admission order, making the merged
//!    live list identical to the batch simulator's.
//! 3. **The reducer is sequential and ordered**: per-tick shard results
//!    are collected in shard-id order; pricing, acceptance (Welford
//!    price moments), clearing and lifecycle run exactly the batch
//!    loop's code path on the merged view.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod engine;
pub mod ingest;
pub mod journal;
pub mod recovery;
pub mod replay;
pub(crate) mod sync;

pub use arena::{SlotArena, SlotHandle};
pub use engine::{
    EventRejection, ServiceConfig, ServiceError, ServiceEvent, ShardPanic, ShardedService,
};
pub use ingest::{
    AbandonedLane, IngestConfig, IngestService, IngressProducer, SendError, SequencerHandle,
    SequencerPanic,
};
pub use journal::{
    read_journal, JournalConfig, JournalError, JournalRecord, JournalWriter, Tail, TICK_PRODUCER,
};
pub use recovery::{recover, recover_with_strategy, ProducerAck, Recovered, RecoveryError};
pub use replay::{
    replay, replay_ingested, replay_journaled, replay_recovered, replay_service,
    replay_with_options,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::engine::{
        EventRejection, ServiceConfig, ServiceError, ServiceEvent, ShardPanic, ShardedService,
    };
    pub use crate::ingest::{
        AbandonedLane, IngestConfig, IngestService, IngressProducer, SendError, SequencerHandle,
        SequencerPanic,
    };
    pub use crate::journal::{
        read_journal, JournalConfig, JournalError, JournalRecord, JournalWriter, Tail,
        TICK_PRODUCER,
    };
    pub use crate::recovery::{
        recover, recover_with_strategy, ProducerAck, Recovered, RecoveryError,
    };
    pub use crate::replay::{
        replay, replay_ingested, replay_journaled, replay_recovered, replay_service,
        replay_with_options,
    };
}

/// A unique scratch directory under the system temp dir for journal and
/// checkpoint tests. Each call creates a fresh directory.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("maps_service_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
