//! Crash recovery: latest decodable checkpoint + journal-tail replay.
//!
//! The durability contract (see [`crate::journal`]):
//!
//! * every admitted event is appended to the write-ahead journal
//!   **before** it mutates service state, and the whole epoch is
//!   flushed + fsynced at its [`ServiceEvent::PeriodTick`] barrier;
//! * on a checkpoint cadence, the full [`ShardedService`] state is
//!   serialized durably (temp file + fsync + atomic rename) right after
//!   the tick closes.
//!
//! [`recover`] therefore reconstructs the exact pre-crash service:
//! restore the newest checkpoint that decodes (CRC-checked; a torn
//! checkpoint silently falls back to the previous one — the journal
//! covers the gap), then re-drive the journal records whose epoch is at
//! or past the checkpoint through the ordinary
//! [`ShardedService::push_stamped`] path. Because the journal holds
//! events *pre-validation* and ticks as explicit barrier records,
//! replay re-counts rejections and re-runs the deterministic reducer,
//! so the recovered [`maps_simulator::Outcome::deterministic_bits`]
//! equals an uninterrupted run's — at any shard / thread count, which
//! the `recovery_oracle` crash-at-every-epoch sweep enforces.
//!
//! A torn final frame (the crash hit mid-`write`) is detected by the
//! per-frame CRC, truncated, and reported as [`Tail::Torn`]; the
//! returned [`ProducerAck`] watermarks tell a supervisor exactly which
//! `(epoch, seq)` each producer must resend from — resends at or below
//! the watermark are suppressed idempotently, so at-least-once producer
//! retry is safe.

use std::path::Path;

use maps_core::{PricingStrategy, StrategyKind};
use maps_simulator::MatchPolicy;
use maps_spatial::GridSpec;

use crate::engine::{ServiceConfig, ServiceError, ShardedService};
use crate::journal::{
    checkpoint_path, decode_checkpoint, list_checkpoints, read_journal, JournalConfig,
    JournalError, JournalWriter, Tail, TICK_PRODUCER,
};

#[cfg(doc)]
use crate::engine::ServiceEvent;

/// The highest `(epoch, seq)` the journal holds for one producer lane:
/// the resume point a supervisor hands to
/// [`crate::ingest::AbandonedLane::reconnect`] (the *next* event is
/// `seq + 1` within `epoch`, or `(epoch', 0)` for a later epoch —
/// resending at or below the ack is harmless either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerAck {
    /// Producer lane index.
    pub producer: u32,
    /// Epoch of the last durable event from this producer.
    pub epoch: u64,
    /// Sequence number of the last durable event from this producer.
    pub seq: u64,
}

/// A successfully recovered service plus what recovery learned.
#[derive(Debug)]
pub struct Recovered {
    /// The service, bit-identical to the crashed instance at its last
    /// durable epoch barrier (plus any staged events journaled after
    /// it), with the journal re-attached for continued appending.
    pub service: ShardedService,
    /// Epoch-barrier (tick) records re-driven from the journal tail.
    pub epochs_replayed: u32,
    /// Whether the journal ended clean or with a torn (now truncated)
    /// final frame.
    pub tail: Tail,
    /// Per-producer durable watermarks, ascending by producer id.
    pub acks: Vec<ProducerAck>,
}

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The journal file is missing, unreadable, or not a journal.
    Journal(JournalError),
    /// No checkpoint in the journal directory decodes — nothing to
    /// anchor replay on (the baseline checkpoint is written when the
    /// journal is attached, so this means the directory was tampered
    /// with or never initialized).
    NoCheckpoint,
    /// The newest decodable checkpoint does not structurally match the
    /// service being recovered into (different grid, strategy, …).
    Checkpoint {
        /// Epoch of the offending checkpoint.
        epoch: u64,
        /// What did not match.
        reason: &'static str,
    },
    /// Replaying the journal tail hit a fatal service error (a shard
    /// panic — a rejection is *not* fatal and is re-counted silently).
    Replay(ServiceError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Journal(e) => write!(f, "recovery failed reading journal: {e}"),
            RecoveryError::NoCheckpoint => f.write_str("recovery found no decodable checkpoint"),
            RecoveryError::Checkpoint { epoch, reason } => {
                write!(
                    f,
                    "checkpoint {epoch} does not match this service: {reason}"
                )
            }
            RecoveryError::Replay(e) => write!(f, "recovery failed replaying journal tail: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Journal(e) => Some(e),
            RecoveryError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for RecoveryError {
    fn from(e: JournalError) -> Self {
        RecoveryError::Journal(e)
    }
}

/// Recovers a service running one of the paper strategies from the
/// journal directory in `journal_cfg`. `grid`, `match_policy` and
/// `kind` must describe the crashed service (they are cross-checked
/// against the checkpoint header); `config` — including the shard
/// count — may differ freely: recovery re-routes restored workers
/// through the new shard map, and the shard-count-invariance contract
/// keeps the outcome bits identical.
pub fn recover(
    grid: GridSpec,
    match_policy: MatchPolicy,
    kind: StrategyKind,
    config: ServiceConfig,
    journal_cfg: &JournalConfig,
) -> Result<Recovered, RecoveryError> {
    recover_with_strategy(
        grid,
        match_policy,
        maps_core::paper_default_strategy(kind, grid.num_cells()),
        config,
        journal_cfg,
    )
}

/// [`recover`] with a custom strategy instance. The strategy's own
/// state is overwritten from the checkpoint (so a freshly constructed,
/// uncalibrated instance is the right thing to pass); only its
/// [`PricingStrategy::name`] must match the checkpointed one.
pub fn recover_with_strategy(
    grid: GridSpec,
    match_policy: MatchPolicy,
    strategy: Box<dyn PricingStrategy>,
    config: ServiceConfig,
    journal_cfg: &JournalConfig,
) -> Result<Recovered, RecoveryError> {
    let journal_path = journal_cfg.journal_path();
    let contents = read_journal(&journal_path)?;

    let mut service = ShardedService::with_strategy(grid, match_policy, strategy, config);
    let cp_epoch = restore_newest_checkpoint(&mut service, &journal_cfg.dir)?;

    // Re-drive the tail: every record stamped at or past the checkpoint
    // epoch. (Events of epoch `e` are stamped while `period == e`; the
    // checkpoint named `e + 1` is written after tick `e` closes, so the
    // `>=` filter selects exactly the post-checkpoint suffix.) The
    // journal is detached during replay — re-driven events must not be
    // re-appended.
    let mut epochs_replayed = 0u32;
    for rec in &contents.records {
        if rec.epoch < cp_epoch {
            continue;
        }
        if rec.producer == TICK_PRODUCER {
            epochs_replayed += 1;
        }
        match service.push_stamped(rec.producer, rec.epoch, rec.seq, rec.event) {
            Ok(()) | Err(ServiceError::Rejected(_)) => {}
            Err(fatal) => return Err(RecoveryError::Replay(fatal)),
        }
    }

    // Truncate the torn tail (if any) and continue appending in place.
    let writer = JournalWriter::open_append(&journal_path, contents.valid_len)?;
    service.resume_journal(writer, journal_cfg);
    service.sync_serial_seq();

    let acks = producer_acks(&contents.records);
    Ok(Recovered {
        service,
        epochs_replayed,
        tail: contents.tail,
        acks,
    })
}

/// Restores the newest checkpoint that decodes *and* structurally
/// matches, returning its epoch. A CRC-corrupt (torn) checkpoint file
/// falls back to the next older one — the journal covers the extra
/// replay distance. A checkpoint that decodes but describes a different
/// service is a hard error: replaying someone else's journal would
/// silently produce garbage.
fn restore_newest_checkpoint(
    service: &mut ShardedService,
    dir: &Path,
) -> Result<u64, RecoveryError> {
    let epochs = list_checkpoints(dir)?;
    for &epoch in epochs.iter().rev() {
        let bytes = match std::fs::read(checkpoint_path(dir, epoch)) {
            Ok(bytes) => bytes,
            Err(_) => continue,
        };
        let words = match decode_checkpoint(&bytes) {
            Ok(words) => words,
            // Torn/garbled checkpoint: fall back to an older one.
            Err(JournalError::Corrupt(_)) | Err(JournalError::BadMagic) => continue,
            Err(e) => return Err(e.into()),
        };
        return match service.restore_from_words(&words) {
            Ok(()) => {
                debug_assert_eq!(u64::from(service.periods_served()), epoch);
                Ok(epoch)
            }
            Err(reason) => Err(RecoveryError::Checkpoint { epoch, reason }),
        };
    }
    Err(RecoveryError::NoCheckpoint)
}

/// Per-producer maximum `(epoch, seq)` over the durable records —
/// identical to the recovered service's internal watermarks, exposed
/// for supervisor-driven producer reconnection.
fn producer_acks(records: &[crate::journal::JournalRecord]) -> Vec<ProducerAck> {
    let mut acks: Vec<ProducerAck> = Vec::new();
    for rec in records {
        if rec.producer == TICK_PRODUCER {
            continue;
        }
        match acks.iter_mut().find(|a| a.producer == rec.producer) {
            Some(ack) => {
                if (rec.epoch, rec.seq) > (ack.epoch, ack.seq) {
                    ack.epoch = rec.epoch;
                    ack.seq = rec.seq;
                }
            }
            None => acks.push(ProducerAck {
                producer: rec.producer,
                epoch: rec.epoch,
                seq: rec.seq,
            }),
        }
    }
    acks.sort_unstable_by_key(|a| a.producer);
    acks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceEvent;
    use crate::journal::JOURNAL_FILE;
    use maps_simulator::{GroundWorker, MatchPolicy};
    use maps_spatial::{Point, Rect};

    fn grid() -> GridSpec {
        GridSpec::square(Rect::square(10.0), 2)
    }

    fn worker(x: f64) -> GroundWorker {
        GroundWorker {
            location: Point::new(x, x),
            radius: 5.0,
            duration: 4,
        }
    }

    fn config(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    fn journaled_service(dir: &std::path::Path) -> (ShardedService, JournalConfig) {
        let cfg = JournalConfig::new(dir, 1);
        let mut svc =
            ShardedService::new(grid(), MatchPolicy::Consume, StrategyKind::Sdr, config(2));
        svc.attach_journal(&cfg).unwrap();
        (svc, cfg)
    }

    #[test]
    fn missing_journal_is_a_journal_error() {
        let dir = crate::test_dir("recover_missing");
        let cfg = JournalConfig::new(&dir, 1);
        let err = recover(
            grid(),
            MatchPolicy::Consume,
            StrategyKind::Sdr,
            config(1),
            &cfg,
        )
        .expect_err("nothing to recover");
        assert!(matches!(err, RecoveryError::Journal(JournalError::Io(_))));
        assert!(err.to_string().contains("journal"));
    }

    #[test]
    fn journal_without_checkpoints_reports_no_checkpoint() {
        let dir = crate::test_dir("recover_no_ckp");
        let (_svc, cfg) = journaled_service(&dir);
        for epoch in list_checkpoints(&dir).unwrap() {
            std::fs::remove_file(checkpoint_path(&dir, epoch)).unwrap();
        }
        let err = recover(
            grid(),
            MatchPolicy::Consume,
            StrategyKind::Sdr,
            config(1),
            &cfg,
        )
        .expect_err("no checkpoints left");
        assert!(matches!(err, RecoveryError::NoCheckpoint));
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = crate::test_dir("recover_fallback");
        let (mut svc, cfg) = journaled_service(&dir);
        for period in 0..3 {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + f64::from(period)),
            });
            svc.push(ServiceEvent::PeriodTick);
        }
        let uninterrupted = svc.into_outcome().deterministic_bits();
        // Garble the newest checkpoint (epoch 3): flip a payload byte.
        let newest = *list_checkpoints(&dir).unwrap().last().unwrap();
        assert_eq!(newest, 3);
        let path = checkpoint_path(&dir, newest);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();

        let recovered = recover(
            grid(),
            MatchPolicy::Consume,
            StrategyKind::Sdr,
            config(4),
            &cfg,
        )
        .unwrap();
        // Fell back to checkpoint 2 and replayed the final epoch.
        assert_eq!(recovered.epochs_replayed, 1);
        assert_eq!(recovered.tail, Tail::Clean);
        assert_eq!(recovered.service.periods_served(), 3);
        assert_eq!(
            recovered.service.into_outcome().deterministic_bits(),
            uninterrupted
        );
    }

    #[test]
    fn mismatched_world_is_a_hard_checkpoint_error() {
        let dir = crate::test_dir("recover_mismatch");
        let (_svc, cfg) = journaled_service(&dir);
        let other_grid = GridSpec::square(Rect::square(10.0), 3);
        let err = recover(
            other_grid,
            MatchPolicy::Consume,
            StrategyKind::Sdr,
            config(1),
            &cfg,
        )
        .expect_err("grid mismatch must not replay");
        assert!(
            matches!(err, RecoveryError::Checkpoint { epoch: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = crate::test_dir("recover_torn");
        let (mut svc, cfg) = journaled_service(&dir);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(2.0),
        });
        drop(svc);
        // Tear the final frame: chop 3 bytes off the journal.
        let path = dir.join(JOURNAL_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let recovered = recover(
            grid(),
            MatchPolicy::Consume,
            StrategyKind::Sdr,
            config(2),
            &cfg,
        )
        .unwrap();
        assert!(matches!(recovered.tail, Tail::Torn { .. }));
        // Epoch 0's barrier was durable; the worker staged after it was
        // torn off, so only the first arrival survives.
        assert_eq!(recovered.service.periods_served(), 1);
        assert_eq!(recovered.service.admitted_workers(), 1);
        assert_eq!(
            recovered.acks,
            vec![ProducerAck {
                producer: 0,
                epoch: 0,
                seq: 0,
            }]
        );
        // The truncated journal accepts appends again.
        let mut svc = recovered.service;
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(2.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.periods_served(), 2);
        let reread = read_journal(&path).unwrap();
        assert_eq!(reread.tail, Tail::Clean);
    }
}
