//! Replay driver: feeds a prebuilt [`GroundTruth`] through the sharded
//! service as an event stream.
//!
//! This is both the migration path (anything that can run the batch
//! simulator can run the service) and the **oracle harness**: the
//! resulting [`Outcome`] must be bit-identical to
//! [`Simulation::run`](maps_simulator::Simulation::run) — every field
//! except the wall-clock timing columns, compared via
//! [`Outcome::deterministic_bits`] — at any shard count and any rayon
//! thread count. The shard-sweep test (`tests/replay_oracle.rs`) and
//! the root proptest churn stream enforce exactly that.

use crate::engine::{ServiceConfig, ServiceError, ServiceEvent, ShardedService};
use crate::ingest::{chunk_bounds, IngestConfig, IngestService};
use crate::journal::JournalConfig;
use maps_core::StrategyKind;
use maps_simulator::{GroundTruth, GroundTruthProbe, Outcome, SimOptions};

/// Replays `truth` through a `shards`-way service with paper-default
/// strategy parameters and [`SimOptions::default`].
pub fn replay(truth: &GroundTruth, kind: StrategyKind, shards: usize) -> Outcome {
    replay_with_options(truth, kind, shards, SimOptions::default())
}

/// [`replay`] with explicit batch-simulator options.
///
/// `options.calibrate` / `options.probe_seed` drive the same
/// Algorithm-1 calibration the batch loop performs;
/// `options.max_edges_per_task` is the per-task edge cap. The
/// `incremental` flag has no meaning here — the service *is* the
/// incremental engine — and is ignored.
pub fn replay_with_options(
    truth: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    options: SimOptions,
) -> Outcome {
    let mut service = replay_service(truth, kind, shards, options);
    for period in &truth.periods {
        for &worker in &period.workers {
            service.push(ServiceEvent::WorkerArrive { worker });
        }
        for &task in &period.tasks {
            service.push(ServiceEvent::TaskRequest { task });
        }
        service.push(ServiceEvent::PeriodTick);
    }
    service.into_outcome()
}

/// [`replay_with_options`] with a write-ahead journal attached: every
/// event is journaled before it mutates state and each epoch is made
/// durable (flush + fsync) at its tick, with checkpoints on the
/// configured cadence. The outcome is bit-identical to the unjournaled
/// replay — the journal is write-path-only — which doubles as the
/// apples-to-apples driver for the `journal_throughput` benchmark.
pub fn replay_journaled(
    truth: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    options: SimOptions,
    journal: &JournalConfig,
) -> Result<Outcome, ServiceError> {
    let mut service = replay_service(truth, kind, shards, options);
    service.attach_journal(journal)?;
    for period in &truth.periods {
        for &worker in &period.workers {
            service.try_push(ServiceEvent::WorkerArrive { worker })?;
        }
        for &task in &period.tasks {
            service.try_push(ServiceEvent::TaskRequest { task })?;
        }
        service.try_push(ServiceEvent::PeriodTick)?;
    }
    Ok(service.into_outcome())
}

/// Resumes a crashed [`replay_journaled`] run: recovers the service
/// from the journal directory (latest checkpoint + journal-tail
/// replay), then streams the not-yet-durable remainder of `truth` —
/// from producer lane 0's recovered watermark within the current epoch,
/// then every later period — and returns the finished outcome. By the
/// recovery-equals-uninterrupted contract the result is bit-identical
/// to the run that never crashed; on a journal that already covers the
/// whole stream this replays to the same outcome without re-sending
/// anything. The strategy state (including any pre-crash calibration)
/// comes from the checkpoint, so `options.calibrate` is not consulted.
pub fn replay_recovered(
    truth: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    options: SimOptions,
    journal: &JournalConfig,
) -> Result<Outcome, crate::recovery::RecoveryError> {
    let config = ServiceConfig {
        shards,
        max_edges_per_task: options.max_edges_per_task,
        expected_workers: truth.total_workers().max(1),
    };
    let recovered =
        crate::recovery::recover(truth.grid, truth.match_policy, kind, config, journal)?;
    let mut service = recovered.service;
    let served = service.periods_served() as usize;
    let resume_start = match service.watermark(0) {
        Some((epoch, seq)) if epoch == served as u64 => seq as usize + 1,
        _ => 0,
    };
    for (i, period) in truth.periods.iter().enumerate().skip(served) {
        let n_workers = period.workers.len();
        let start = if i == served { resume_start } else { 0 };
        for j in start..n_workers + period.tasks.len() {
            let event = if j < n_workers {
                ServiceEvent::WorkerArrive {
                    worker: period.workers[j],
                }
            } else {
                ServiceEvent::TaskRequest {
                    task: period.tasks[j - n_workers],
                }
            };
            service
                .try_push(event)
                .map_err(crate::recovery::RecoveryError::Replay)?;
        }
        service
            .try_push(ServiceEvent::PeriodTick)
            .map_err(crate::recovery::RecoveryError::Replay)?;
    }
    Ok(service.into_outcome())
}

/// A calibrated service sized for replaying `truth` (shared by the
/// serial and the multi-producer replay drivers).
pub fn replay_service(
    truth: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    options: SimOptions,
) -> ShardedService {
    let config = ServiceConfig {
        shards,
        max_edges_per_task: options.max_edges_per_task,
        expected_workers: truth.total_workers().max(1),
    };
    let mut service = ShardedService::new(truth.grid, truth.match_policy, kind, config);
    if options.calibrate {
        let mut probe = GroundTruthProbe::new(&truth.demands, options.probe_seed);
        service.calibrate(&mut probe);
    }
    service
}

/// [`replay_with_options`] through the multi-producer ingestion
/// front-end ([`crate::ingest`]): each period's serial event list is
/// split into `producers` contiguous chunks, every chunk is streamed by
/// its own producer thread (each closing the epoch when its chunk is
/// done), and the sequencer merges the lanes under the canonical
/// `(epoch, producer, seq)` order.
///
/// By the interleaving-invariance contract the outcome is
/// **bit-identical** to the serial [`replay_with_options`] — and hence
/// to [`Simulation::run`](maps_simulator::Simulation::run) — at any
/// producer count, any queue capacity, any shard count and any rayon
/// thread count.
pub fn replay_ingested(
    truth: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    producers: usize,
    options: SimOptions,
) -> Outcome {
    let mut service = replay_service(truth, kind, shards, options);
    let (ingest, handles) = IngestService::new(IngestConfig {
        producers,
        ..IngestConfig::default()
    });
    std::thread::scope(|scope| {
        for mut handle in handles {
            scope.spawn(move || {
                let p = handle.id() as usize;
                // Stream each period's chunk off the borrowed ground
                // truth (events are `Copy`), per period as one
                // `send_iter` call: events are constructed directly in
                // ring slots and published window-by-window with one
                // release store each — no intermediate buffer. Index
                // `i` walks the period's serial event list
                // [workers…, tasks…], the same order `period_events`
                // enumerates.
                for period in &truth.periods {
                    let n_workers = period.workers.len();
                    let bounds = chunk_bounds(n_workers + period.tasks.len(), producers);
                    handle.send_iter((bounds[p]..bounds[p + 1]).map(|i| {
                        if i < n_workers {
                            ServiceEvent::WorkerArrive {
                                worker: period.workers[i],
                            }
                        } else {
                            ServiceEvent::TaskRequest {
                                task: period.tasks[i - n_workers],
                            }
                        }
                    }));
                    handle.end_epoch();
                }
            });
        }
        ingest
            .sequence(&mut service)
            .expect("replay streams contain no fatal faults");
    });
    service.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_simulator::{Simulation, SyntheticConfig};

    /// Smoke-level slice of the tentpole oracle (the full shard × thread
    /// × strategy sweep lives in `tests/replay_oracle.rs`).
    #[test]
    fn replay_matches_simulation_on_a_small_world() {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(60)
            .with_num_tasks(240)
            .with_periods(10)
            .with_grid_side(4)
            .build(13);
        let batch = Simulation::new(world.clone(), StrategyKind::Maps)
            .run()
            .deterministic_bits();
        for shards in [1usize, 3, 7] {
            let online = replay(&world, StrategyKind::Maps, shards);
            assert_eq!(
                online.deterministic_bits(),
                batch,
                "{shards}-shard replay diverged from the batch simulator"
            );
        }
    }

    /// A journaled replay is write-path-only (bits match the unjournaled
    /// run), and resuming from its complete journal replays to the same
    /// outcome without pushing anything new.
    #[test]
    fn journaled_replay_and_complete_recovery_match() {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(30)
            .with_num_tasks(90)
            .with_periods(5)
            .with_grid_side(3)
            .build(7);
        let options = SimOptions {
            calibrate: false,
            ..SimOptions::default()
        };
        let dir = crate::test_dir("replay_recovered");
        let journal = JournalConfig::new(&dir, 2);
        let plain = replay_with_options(&world, StrategyKind::Maps, 2, options);
        let journaled = replay_journaled(&world, StrategyKind::Maps, 2, options, &journal)
            .expect("journaled replay");
        assert_eq!(journaled.deterministic_bits(), plain.deterministic_bits());
        let resumed = replay_recovered(&world, StrategyKind::Maps, 3, options, &journal)
            .expect("recovery from a complete journal");
        assert_eq!(resumed.deterministic_bits(), plain.deterministic_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_without_calibration_matches() {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(30)
            .with_num_tasks(90)
            .with_periods(5)
            .with_grid_side(3)
            .build(7);
        let options = SimOptions {
            calibrate: false,
            ..SimOptions::default()
        };
        let batch = Simulation::new(world.clone(), StrategyKind::CappedUcb)
            .with_options(options)
            .run();
        let online = replay_with_options(&world, StrategyKind::CappedUcb, 2, options);
        assert_eq!(online.deterministic_bits(), batch.deterministic_bits());
        assert_eq!(online.calibration_secs, 0.0);
    }
}
