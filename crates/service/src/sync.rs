//! The sync facade for the ingestion ring's concurrency primitives.
//!
//! `ingest.rs` imports every synchronization primitive it uses —
//! atomics, `fence`, the park mutex/condvars, the role-private `Cell`
//! cursors, `Instant`, and the spin/yield knobs — from this module and
//! **never** from `std::sync` directly (enforced by the `sync-facade`
//! maps-lint rule). Normally the facade re-exports the real `std`
//! types, so shipping builds are exactly what they were. Under the
//! `maps_model` cargo feature it re-exports the tracked types from
//! `maps-model`, so the **same shipping ring code** is what the model
//! checker explores — no checked copy that can drift:
//!
//! * atomics/fences/mutexes/condvars become model scheduling points
//!   evaluated against the simulated C11 memory model;
//! * `spin_limit()`/`yield_limit()` collapse to 0 inside an execution
//!   (spinning cannot make progress under an exhaustive scheduler, and
//!   the park path is precisely what wants checking);
//! * [`Instant`] freezes inside an execution: deadlines never expire,
//!   so `wait_timeout` cannot paper over a lost wakeup — it must
//!   surface as a model deadlock;
//! * [`SlotTracker`] race-tracks the ring's raw slot buffer (which must
//!   stay `UnsafeCell<MaybeUninit<T>>` for the zero-copy borrow, so the
//!   model cannot wrap the slots themselves).
//!
//! Outside an active model execution the tracked types pass through to
//! the real `std` primitives they wrap, which is why the feature can
//! stay enabled for a whole test binary while its non-model tests still
//! behave normally.

/// Bounded spins before a waiter starts yielding, and yields before it
/// parks on the condvar. Small on purpose — and skipped entirely on a
/// single-hardware-thread host (see [`spin_limit`]), where a spinning
/// waiter burns exactly the quantum the other side needs to make the
/// awaited state change.
const SPIN_LIMIT: u32 = 64;
const YIELD_LIMIT: u32 = 8;

/// [`SPIN_LIMIT`], or 0 when the host has a single hardware thread:
/// there, the awaited condition *cannot* change while we spin, so the
/// only useful move is yielding the CPU to the other side.
fn host_spin_limit() -> u32 {
    use std::sync::OnceLock;
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_LIMIT,
        _ => 0,
    })
}

#[cfg(not(feature = "maps_model"))]
mod imp {
    pub use std::cell::Cell;
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64};
    pub use std::sync::{Condvar, Mutex, MutexGuard};
    pub use std::time::Instant;

    pub fn spin_limit() -> u32 {
        super::host_spin_limit()
    }

    pub fn yield_limit() -> u32 {
        super::YIELD_LIMIT
    }

    pub fn thread_yield() {
        std::thread::yield_now();
    }

    /// No-op stand-in for the model's slot race tracker: shipping
    /// builds carry no per-slot bookkeeping at all.
    #[derive(Debug, Default)]
    pub struct SlotTracker;

    impl SlotTracker {
        pub fn new(_slots: usize) -> Self {
            Self
        }

        /// The producer is writing physical slot `i`.
        #[inline]
        pub fn write(&self, _i: usize) {}

        /// The consumer is claiming physical slots `lo..hi`.
        #[inline]
        pub fn read_range(&self, _lo: usize, _hi: usize) {}
    }
}

#[cfg(feature = "maps_model")]
mod imp {
    pub use maps_model::sync::{fence, AtomicBool, AtomicU64, Cell, Condvar, Mutex, MutexGuard};

    pub fn spin_limit() -> u32 {
        if maps_model::is_active() {
            0
        } else {
            super::host_spin_limit()
        }
    }

    pub fn yield_limit() -> u32 {
        if maps_model::is_active() {
            0
        } else {
            super::YIELD_LIMIT
        }
    }

    pub fn thread_yield() {
        maps_model::thread::yield_now();
    }

    /// Race-tracks the ring's raw slot buffer via a
    /// [`maps_model::sync::CellGroup`]; a no-op outside an execution.
    #[derive(Debug, Default)]
    pub struct SlotTracker(maps_model::sync::CellGroup);

    impl SlotTracker {
        pub fn new(slots: usize) -> Self {
            Self(maps_model::sync::CellGroup::new(slots))
        }

        /// The producer is writing physical slot `i`.
        #[inline]
        pub fn write(&self, i: usize) {
            self.0.write(i);
        }

        /// The consumer is claiming physical slots `lo..hi`.
        #[inline]
        pub fn read_range(&self, lo: usize, hi: usize) {
            self.0.read_range(lo, hi);
        }
    }

    /// A model-aware [`std::time::Instant`]: frozen while a model
    /// execution is active, so backpressure deadlines never expire and
    /// a lost wakeup must surface as a model deadlock instead of being
    /// papered over by `wait_timeout`. The only comparisons the ring
    /// performs are `now >= deadline` and
    /// `deadline.checked_duration_since(now)`, and both consistently
    /// report "the deadline is forever away" inside an execution.
    #[derive(Debug, Clone, Copy)]
    pub struct Instant {
        real: std::time::Instant,
        model: bool,
    }

    impl Instant {
        pub fn now() -> Self {
            Self {
                // lint-allow(det-wallclock): facade passthrough for the ring's backpressure deadlines; frozen under the model, never observed by replay
                real: std::time::Instant::now(),
                model: maps_model::is_active(),
            }
        }

        pub fn checked_duration_since(&self, earlier: Instant) -> Option<std::time::Duration> {
            if self.model || earlier.model {
                Some(std::time::Duration::from_secs(3600))
            } else {
                self.real.checked_duration_since(earlier.real)
            }
        }
    }

    impl PartialEq for Instant {
        fn eq(&self, other: &Self) -> bool {
            !self.model && !other.model && self.real == other.real
        }
    }

    impl PartialOrd for Instant {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            if self.model || other.model {
                // Frozen time: "now" is forever before any deadline.
                Some(std::cmp::Ordering::Less)
            } else {
                self.real.partial_cmp(&other.real)
            }
        }
    }

    impl std::ops::Add<std::time::Duration> for Instant {
        type Output = Instant;
        fn add(self, rhs: std::time::Duration) -> Instant {
            Instant {
                real: self.real + rhs,
                model: self.model,
            }
        }
    }
}

pub use imp::*;
pub use std::sync::atomic::Ordering;
