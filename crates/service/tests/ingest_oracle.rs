//! The PR-5 acceptance oracle: **interleaving invariance** of the
//! multi-producer ingestion front-end.
//!
//! Replaying a `GroundTruth` split across N producers must yield an
//! `Outcome` bit-identical to serial `ShardedService::push` — and
//! therefore, by the PR-4 contract, to `Simulation::run` — checked
//! after **every epoch** (not just at the end), across
//!
//! * producer counts 1/2/4/8 ([`maps_testkit::DEFAULT_PRODUCER_COUNTS`]),
//! * shard counts 1/2/4/8 ([`maps_testkit::DEFAULT_SHARD_COUNTS`]),
//! * two strategies (MAPS — the one with its own rayon fan-out — and
//!   CappedUCB, a learning baseline),
//! * at least three *forced* interleavings per configuration
//!   (round-robin send serialization, strictly reversed producer
//!   batches, and a seeded yield-perturbed schedule), plus free-running
//!   sweeps over queue capacities down to a single slot,
//! * a 1/3-rayon-thread slice of the testkit harness on the serial
//!   baseline (the full 1/2/3/8 sweep lives in `replay_oracle` and the
//!   root proptest).

use maps_core::StrategyKind;
use maps_service::ingest::{chunk_bounds, period_events, IngestConfig, IngestService};
use maps_service::{ServiceConfig, ServiceEvent, ShardedService};
use maps_simulator::{GroundTruth, GroundTruthProbe, SimOptions, Simulation, SyntheticConfig};
use maps_testkit::{InterleavePlan, Interleaver, DEFAULT_PRODUCER_COUNTS, DEFAULT_SHARD_COUNTS};

fn world() -> GroundTruth {
    SyntheticConfig::paper_default()
        .with_num_workers(60)
        .with_num_tasks(240)
        .with_periods(8)
        .with_grid_side(4)
        .build(17)
}

fn options() -> SimOptions {
    SimOptions {
        calibrate: false, // calibration parity is covered by the default-options test below
        ..SimOptions::default()
    }
}

fn service_for(
    world: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    options: SimOptions,
) -> ShardedService {
    let config = ServiceConfig {
        shards,
        max_edges_per_task: options.max_edges_per_task,
        expected_workers: world.total_workers().max(1),
    };
    let mut service = ShardedService::new(world.grid, world.match_policy, kind, config);
    if options.calibrate {
        let mut probe = GroundTruthProbe::new(&world.demands, options.probe_seed);
        service.calibrate(&mut probe);
    }
    service
}

/// Serial-push baseline: `(final_bits, per_epoch_bits)`.
fn serial_epoch_bits(
    world: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    options: SimOptions,
) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut service = service_for(world, kind, shards, options);
    let mut epochs = Vec::new();
    for period in &world.periods {
        for event in period_events(period) {
            service.push(event);
        }
        service.push(ServiceEvent::PeriodTick);
        epochs.push(service.outcome_snapshot().deterministic_bits());
    }
    (service.into_outcome().deterministic_bits(), epochs)
}

/// Multi-producer replay under a forced interleaving:
/// `(final_bits, per_epoch_bits)`. Each period's serial event list is
/// split into `producers` balanced contiguous chunks; producer threads
/// stream their chunks under `plan`, the sequencer records the outcome
/// snapshot after every barrier tick.
fn ingested_epoch_bits(
    world: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    producers: usize,
    queue_capacity: usize,
    plan: InterleavePlan,
    options: SimOptions,
) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut service = service_for(world, kind, shards, options);
    let mut scripts: Vec<Vec<Vec<ServiceEvent>>> = vec![Vec::new(); producers];
    for period in &world.periods {
        let events = period_events(period);
        let bounds = chunk_bounds(events.len(), producers);
        for (p, script) in scripts.iter_mut().enumerate() {
            script.push(events[bounds[p]..bounds[p + 1]].to_vec());
        }
    }
    let (ingest, handles) = IngestService::new(IngestConfig {
        producers,
        queue_capacity,
    });
    let interleaver = Interleaver::new(producers, plan);
    let mut epoch_bits = Vec::new();
    std::thread::scope(|scope| {
        for (mut handle, script) in handles.into_iter().zip(scripts) {
            let interleaver = &interleaver;
            scope.spawn(move || {
                let p = handle.id() as usize;
                for epoch_events in script {
                    for event in epoch_events {
                        interleaver.step(p, || handle.send(event));
                    }
                    interleaver.step(p, || handle.end_epoch());
                }
                interleaver.finished(p);
            });
        }
        ingest
            .sequence_with(&mut service, |_, live| {
                epoch_bits.push(live.outcome_snapshot().deterministic_bits());
            })
            .expect("oracle streams contain no fatal faults");
    });
    (service.into_outcome().deterministic_bits(), epoch_bits)
}

/// The tentpole sweep: producers × shards × strategies × three forced
/// interleavings, every epoch checked against serial push and the
/// final outcome additionally against the batch simulator.
#[test]
fn ingest_oracle() {
    let world = world();
    let options = options();
    // Ample capacity for the blocking plans: ReverseBatches buffers a
    // producer's whole script, RoundRobin an epoch per producer (see
    // the Interleaver deadlock caveat).
    let ample = world.total_workers() + world.total_tasks() + world.num_periods() + 1;
    for kind in [StrategyKind::Maps, StrategyKind::CappedUcb] {
        let batch = Simulation::new(world.clone(), kind)
            .with_options(options)
            .run()
            .deterministic_bits();
        for shards in DEFAULT_SHARD_COUNTS {
            let (serial_final, serial_epochs) =
                maps_testkit::assert_deterministic_across(&[1, 3], || {
                    serial_epoch_bits(&world, kind, shards, options)
                });
            assert_eq!(
                serial_final, batch,
                "{kind}: serial push diverged from the batch simulator"
            );
            for producers in DEFAULT_PRODUCER_COUNTS {
                for plan in [
                    InterleavePlan::RoundRobin,
                    InterleavePlan::ReverseBatches,
                    InterleavePlan::Staggered(
                        0xA11CE ^ (((producers as u64) << 8) | shards as u64),
                    ),
                ] {
                    let (ingested_final, ingested_epochs) =
                        ingested_epoch_bits(&world, kind, shards, producers, ample, plan, options);
                    assert_eq!(
                        ingested_epochs, serial_epochs,
                        "{kind}: {producers}-producer/{shards}-shard replay under {plan:?} \
                         diverged from serial push mid-stream"
                    );
                    assert_eq!(
                        ingested_final, batch,
                        "{kind}: {producers}-producer/{shards}-shard replay under {plan:?} \
                         diverged from the batch simulator"
                    );
                }
            }
        }
    }
}

/// Queue capacity must be outcome-invariant too: free-running producers
/// under maximal backpressure (capacity 1) up to roomy lanes.
#[test]
fn ingest_oracle_across_queue_capacities() {
    let world = world();
    let options = options();
    let kind = StrategyKind::Maps;
    let (serial_final, serial_epochs) = serial_epoch_bits(&world, kind, 2, options);
    for capacity in [1usize, 2, 7, 4096] {
        for plan in [
            InterleavePlan::Free,
            InterleavePlan::Staggered(capacity as u64),
            // Stutter's seeded sleeps drive both sides of every lane
            // past their spin/yield budgets onto the condvar, so this
            // sweep also exercises the ring's park/wake slow paths.
            InterleavePlan::Stutter(capacity as u64),
        ] {
            let (ingested_final, ingested_epochs) =
                ingested_epoch_bits(&world, kind, 2, 4, capacity, plan, options);
            assert_eq!(
                ingested_epochs, serial_epochs,
                "capacity {capacity} under {plan:?} diverged mid-stream"
            );
            assert_eq!(
                ingested_final, serial_final,
                "capacity {capacity} ({plan:?})"
            );
        }
    }
}

/// Calibration (Algorithm 1) happens before the stream starts; the
/// default-options path must agree end to end as well, and the public
/// `replay_ingested` driver must match the serial `replay`.
#[test]
fn replay_ingested_matches_replay_with_default_options() {
    let world = world();
    let options = SimOptions::default();
    let kind = StrategyKind::Maps;
    let serial = maps_service::replay_with_options(&world, kind, 4, options);
    for producers in DEFAULT_PRODUCER_COUNTS {
        let ingested = maps_service::replay_ingested(&world, kind, 4, producers, options);
        assert_eq!(
            ingested.deterministic_bits(),
            serial.deterministic_bits(),
            "{producers}-producer replay_ingested diverged from serial replay"
        );
    }
}
