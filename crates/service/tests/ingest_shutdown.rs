//! PR-7 shutdown-interleaving suite for the lock-free ingestion ring,
//! pinned at the nastiest configuration: `queue_capacity = 1`, where
//! every send rendezvouses with a pop and every shutdown race has a
//! party parked on the condvar.
//!
//! The contract under test: **no interleaving of producer sends,
//! sequencer progress, and either side's shutdown may hang a thread.**
//! A producer blocked on backpressure when the sequencer dies must
//! fail fast (panic from `send`, `Disconnected` from `try_send`); a
//! sequencer parked on an empty lane when the producer closes must
//! drain and return; an abandoned lane must hold the epoch barrier
//! until reconnect and then complete. Each scenario is swept across
//! timing offsets so the racing side is caught spinning, yielding,
//! and parked.

use maps_service::{
    IngestConfig, IngestService, SendError, ServiceConfig, ServiceEvent, ShardedService,
};
use maps_simulator::{GroundWorker, MatchPolicy};
use maps_spatial::{GridSpec, Point, Rect};
use std::time::Duration;

fn service(shards: usize) -> ShardedService {
    ShardedService::new(
        GridSpec::square(Rect::square(10.0), 2),
        MatchPolicy::Consume,
        maps_core::StrategyKind::BaseP,
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        },
    )
}

fn worker(x: f64) -> GroundWorker {
    GroundWorker {
        location: Point::new(x, 1.0),
        radius: 4.0,
        duration: u32::MAX,
    }
}

fn arrive(x: f64) -> ServiceEvent {
    ServiceEvent::WorkerArrive { worker: worker(x) }
}

/// A producer parked on a full capacity-1 ring when the sequencer is
/// dropped must wake and panic out of `send` — never sleep forever on
/// a condvar nobody will signal. Swept across drop delays so the
/// producer is caught at every stage of the spin → yield → park slow
/// path.
#[test]
fn dropping_the_sequencer_unblocks_a_blocked_send() {
    for delay_us in [0u64, 50, 200, 1_000, 5_000, 20_000] {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 1,
        });
        let mut p0 = producers.pop().unwrap();
        p0.send(arrive(1.0)); // ring now full
        let blocked = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p0.send(arrive(2.0)); // blocks: nobody drains
            }))
        });
        std::thread::sleep(Duration::from_micros(delay_us));
        drop(ingest);
        let result = blocked.join().expect("producer thread must terminate");
        assert!(
            result.is_err(),
            "delay {delay_us}µs: blocked send returned instead of failing fast"
        );
    }
}

/// Same race through the typed path: a `try_send` racing the
/// sequencer's death must report `Disconnected` once the consumer is
/// gone — even though the ring is still full, which would otherwise
/// read as `Timeout`.
#[test]
fn try_send_on_a_full_ring_reports_disconnect_after_drop() {
    let (ingest, mut producers) = IngestService::new(IngestConfig {
        producers: 1,
        queue_capacity: 1,
    });
    let mut p0 = producers.pop().unwrap();
    p0.send(arrive(1.0));
    assert_eq!(
        p0.try_send(arrive(2.0), Duration::from_millis(2)),
        Err(SendError::Timeout),
        "full ring with a live sequencer is backpressure"
    );
    drop(ingest);
    assert_eq!(
        p0.try_send(arrive(2.0), Duration::from_secs(3600)),
        Err(SendError::Disconnected),
        "full ring with a dead sequencer must not wait out the deadline"
    );
}

/// A sequencer parked on an empty capacity-1 lane when the producer
/// closes must wake, drain nothing, and return — the close-vs-park
/// race on the consumer condvar. Swept across close delays.
#[test]
fn producer_close_wakes_a_parked_sequencer() {
    for delay_us in [0u64, 50, 200, 1_000, 5_000, 20_000] {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 1,
        });
        let p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(service(1));
        std::thread::sleep(Duration::from_micros(delay_us));
        p0.close();
        let (svc, epochs) = sequencer.join().expect("sequencer must return cleanly");
        assert_eq!(epochs, 0, "delay {delay_us}µs");
        assert_eq!(svc.periods_served(), 0);
    }
}

/// The same race with one staged event: the close lands while the
/// sequencer may be mid-pop, parked, or not yet started — the event
/// must be admitted (staged, no tick) in every interleaving.
#[test]
fn close_with_staged_event_is_drained_in_every_interleaving() {
    for delay_us in [0u64, 50, 200, 1_000, 5_000] {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 1,
        });
        let mut p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(service(1));
        std::thread::sleep(Duration::from_micros(delay_us));
        p0.send(arrive(1.0));
        p0.close();
        let (svc, epochs) = sequencer.join().expect("sequencer must return cleanly");
        assert_eq!(epochs, 0);
        assert_eq!(svc.admitted_workers(), 1, "delay {delay_us}µs: event lost");
    }
}

/// A sequencer that panics mid-stream (a strategy bomb on the first
/// tick) while the producer is pumping a capacity-1 ring: the
/// producer's in-flight blocked send must panic out — the unwind of
/// the sequencer thread drops the consumer side, and that drop is
/// what unblocks the lane. The producer thread must always terminate.
#[test]
fn sequencer_panic_mid_stream_fails_the_blocked_producer() {
    struct Bomb;
    impl maps_core::PricingStrategy for Bomb {
        fn name(&self) -> &'static str {
            "Bomb"
        }
        fn calibrate(&mut self, _probe: &mut dyn maps_core::DemandProbe) {}
        fn price_period(
            &mut self,
            _input: &maps_core::PeriodInput<'_>,
        ) -> maps_core::PriceSchedule {
            panic!("bomb: first tick");
        }
        fn observe(&mut self, _feedback: &[maps_core::Observation]) {}
    }
    let svc = ShardedService::with_strategy(
        GridSpec::square(Rect::square(10.0), 2),
        MatchPolicy::Consume,
        Box::new(Bomb),
        ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        },
    );
    let (ingest, mut producers) = IngestService::new(IngestConfig {
        producers: 1,
        queue_capacity: 1,
    });
    let mut p0 = producers.pop().unwrap();
    let sequencer = ingest.spawn(svc);
    let pump = std::thread::spawn(move || {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            // The tick detonates the bomb; some later send must hit the
            // dead lane (possibly while parked on backpressure).
            p0.send(ServiceEvent::PeriodTick);
            for i in 0..1_000 {
                p0.send(arrive(i as f64));
            }
        }))
    });
    let err = sequencer.join().expect_err("the bomb must surface");
    assert!(err.message().contains("bomb: first tick"));
    let pumped = pump.join().expect("producer thread must terminate");
    assert!(
        pumped.is_err(),
        "1000 sends into a dead capacity-1 lane cannot all succeed"
    );
}

/// Abandon-then-reconnect at capacity 1: the abandoned lane holds the
/// epoch barrier (the sequencer parks on the open lane and must not
/// tick past it), so the second producer's pump wedges on
/// backpressure behind it — a whole pipeline stalled on one crashed
/// client. Reconnecting must unwedge everything: the reconnect posts
/// a rebase record into a single-slot ring, the smallest place it has
/// to work.
#[test]
fn abandon_holds_the_barrier_then_reconnect_completes_at_capacity_one() {
    let (ingest, mut producers) = IngestService::new(IngestConfig {
        producers: 2,
        queue_capacity: 1,
    });
    let mut p1 = producers.pop().unwrap();
    let mut p0 = producers.pop().unwrap();
    p0.send(arrive(1.0));
    let lane = p0.abandon();
    let sequencer = ingest.spawn(service(2));
    // The sequencer drains lanes in producer order, so while p0's
    // abandoned lane is open, p1's 1-slot lane backs up after one
    // event — pump it from its own thread.
    let pump = std::thread::spawn(move || {
        for i in 0..8 {
            p1.send(arrive(10.0 + i as f64));
        }
        p1.send(ServiceEvent::PeriodTick);
        p1.close();
    });
    // The epoch cannot close over the abandoned lane.
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        !sequencer.is_finished(),
        "tick fired past an abandoned producer"
    );
    let mut p0 = lane.reconnect(0, 1);
    p0.send(arrive(2.0));
    p0.send(ServiceEvent::PeriodTick);
    p0.close();
    pump.join()
        .expect("pump thread must unwedge after reconnect");
    let (svc, epochs) = sequencer.join().expect("reconnect completes the stream");
    assert_eq!(epochs, 1);
    assert_eq!(svc.admitted_workers(), 10);
    assert_eq!(svc.periods_served(), 1);
}

/// Both sides racing to shut down while events are in flight: the
/// producer closes after K sends at the same time as the sequencer is
/// draining; every K must terminate with exactly K admitted workers.
#[test]
fn close_races_drain_without_losing_events() {
    for k in 0..12usize {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 1,
        });
        let mut p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(service(1));
        for i in 0..k {
            p0.send(arrive(i as f64));
        }
        p0.close();
        let (svc, epochs) = sequencer.join().expect("clean drain");
        assert_eq!(epochs, 0);
        assert_eq!(svc.admitted_workers(), k, "k = {k}: event lost");
    }
}
