//! The PR-6 acceptance oracle: **recovery equals uninterrupted**.
//!
//! Every `Outcome` is a pure function of the admitted event stream
//! (PR 4/5 standing invariants), so durability has an exact spec: a
//! service recovered from its write-ahead journal + latest epoch
//! checkpoint must produce `Outcome::deterministic_bits` identical to
//! one that never crashed. This file enforces that across the
//! [`maps_testkit::FaultPlan`] fault kinds:
//!
//! * **crash at every epoch boundary** — shard counts 1/2/4/8
//!   ([`DEFAULT_SHARD_COUNTS`]), recovering into a *different* shard
//!   count than the crash happened at, under the 1/2/3/8 rayon thread
//!   sweep ([`DEFAULT_THREAD_COUNTS`]);
//! * **producer kill mid-epoch** at every epoch — producer counts
//!   1/2/4/8 ([`DEFAULT_PRODUCER_COUNTS`]), supervisor reconnect at the
//!   recovered acks, both exact-resume and at-least-once resend (the
//!   watermark suppresses the duplicates);
//! * **torn final journal record** — seeded truncations, recovery drops
//!   the invalid frame and the producer re-sends from its ack;
//! * **shard panic / sequencer death** — a poisoned tick surfaces as a
//!   typed error (serially and through `SequencerHandle::join`), then
//!   the journal recovers the service to the bit-identical stream.
//!
//! CI runs this file as the fail-fast fault-injection step.

use maps_core::StrategyKind;
use maps_service::ingest::{chunk_bounds, period_events, IngestConfig, IngestService};
use maps_service::journal::JournalConfig;
use maps_service::{
    recover, replay_journaled, SendError, ServiceConfig, ServiceError, ServiceEvent,
    ShardedService, Tail,
};
use maps_simulator::{GroundTruth, SimOptions, Simulation, SyntheticConfig};
use maps_testkit::{
    assert_deterministic_across, Fault, FaultPlan, DEFAULT_PRODUCER_COUNTS, DEFAULT_SHARD_COUNTS,
    DEFAULT_THREAD_COUNTS,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn world() -> GroundTruth {
    SyntheticConfig::paper_default()
        .with_num_workers(60)
        .with_num_tasks(240)
        .with_periods(8)
        .with_grid_side(4)
        .build(17)
}

fn options() -> SimOptions {
    SimOptions {
        calibrate: false, // calibrated-state recovery is covered by the engine checkpoint tests
        ..SimOptions::default()
    }
}

fn config_for(world: &GroundTruth, shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        max_edges_per_task: options().max_edges_per_task,
        expected_workers: world.total_workers().max(1),
    }
}

fn service_for(world: &GroundTruth, kind: StrategyKind, shards: usize) -> ShardedService {
    ShardedService::new(
        world.grid,
        world.match_policy,
        kind,
        config_for(world, shards),
    )
}

fn batch_bits(world: &GroundTruth, kind: StrategyKind) -> Vec<u64> {
    Simulation::new(world.clone(), kind)
        .with_options(options())
        .run()
        .deterministic_bits()
}

/// A unique scratch dir per invocation (integration tests cannot reach
/// the crate-private helper).
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "maps_recovery_oracle_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Serially finishes a recovered service: re-sends the not-yet-durable
/// suffix of the current period (everything past lane 0's watermark)
/// and then streams the remaining periods. This is exactly what a
/// supervisor-driven single producer does after reading its ack.
fn finish_serially(svc: &mut ShardedService, world: &GroundTruth) {
    let served = svc.periods_served() as usize;
    let resume_start = match svc.watermark(0) {
        Some((epoch, seq)) if epoch == served as u64 => seq as usize + 1,
        _ => 0,
    };
    for (i, period) in world.periods.iter().enumerate().skip(served) {
        let events = period_events(period);
        let start = if i == served { resume_start } else { 0 };
        for &event in &events[start..] {
            svc.push(event);
        }
        svc.push(ServiceEvent::PeriodTick);
    }
}

/// Journaled serial run crashed right after `crash_epoch`'s barrier
/// tick, recovered into `shards_after` shards, finished, compared
/// against nothing — the caller owns the comparison.
fn boundary_crash_bits(
    world: &GroundTruth,
    kind: StrategyKind,
    shards_before: usize,
    shards_after: usize,
    crash_epoch: usize,
    checkpoint_every: u32,
) -> Vec<u64> {
    let dir = fresh_dir("boundary");
    let cfg = JournalConfig::new(&dir, checkpoint_every);
    let mut svc = service_for(world, kind, shards_before);
    svc.attach_journal(&cfg).expect("attach journal");
    for period in &world.periods[..=crash_epoch] {
        for event in period_events(period) {
            svc.push(event);
        }
        svc.push(ServiceEvent::PeriodTick);
    }
    drop(svc); // the crash: all state gone, only the journal dir remains

    let recovered = recover(
        world.grid,
        world.match_policy,
        kind,
        config_for(world, shards_after),
        &cfg,
    )
    .expect("boundary recovery");
    assert_eq!(
        recovered.service.periods_served() as usize,
        crash_epoch + 1,
        "recovery must land exactly on the crashed epoch boundary"
    );
    let mut svc = recovered.service;
    finish_serially(&mut svc, world);
    assert_eq!(
        svc.suppressed_duplicates(),
        0,
        "exact resume resends nothing"
    );
    let _ = std::fs::remove_dir_all(&dir);
    svc.into_outcome().deterministic_bits()
}

/// The tentpole sweep, part 1: crash at **every** epoch boundary, at
/// every shard count (recovering into a *different* shard count), under
/// the rayon thread sweep. A checkpoint cadence of 3 makes some crash
/// points recover straight off a checkpoint and others replay a
/// multi-epoch journal tail past an older one.
#[test]
fn crash_at_every_epoch_boundary_recovers_bit_identically() {
    let world = world();
    let kind = StrategyKind::Maps;
    let batch = batch_bits(&world, kind);
    // The journal is write-path-only: journaled replay matches batch.
    let journal_dir = fresh_dir("journaled_replay");
    let journaled = replay_journaled(
        &world,
        kind,
        2,
        options(),
        &JournalConfig::new(&journal_dir, 2),
    )
    .expect("journaled replay");
    assert_eq!(journaled.deterministic_bits(), batch);
    let _ = std::fs::remove_dir_all(&journal_dir);

    for (si, &shards_before) in DEFAULT_SHARD_COUNTS.iter().enumerate() {
        let shards_after = DEFAULT_SHARD_COUNTS[(si + 1) % DEFAULT_SHARD_COUNTS.len()];
        for crash_epoch in 0..world.num_periods() {
            // Full 1/2/3/8 thread sweep on one diagonal per shard count,
            // a 1/3-thread slice elsewhere (cost control; every thread
            // count still meets every shard count and every epoch).
            let threads: &[usize] = if crash_epoch % DEFAULT_SHARD_COUNTS.len() == si {
                &DEFAULT_THREAD_COUNTS
            } else {
                &[1, 3]
            };
            let bits = assert_deterministic_across(threads, || {
                boundary_crash_bits(&world, kind, shards_before, shards_after, crash_epoch, 3)
            });
            assert_eq!(
                bits, batch,
                "crash after epoch {crash_epoch} ({shards_before}→{shards_after} shards) \
                 diverged from the uninterrupted run"
            );
        }
    }
}

/// Part 1b: the second strategy of the CI sweep (CappedUCB) over a
/// shard slice.
#[test]
fn crash_at_every_epoch_boundary_capped_ucb() {
    let world = world();
    let kind = StrategyKind::CappedUcb;
    let batch = batch_bits(&world, kind);
    for &(shards_before, shards_after) in &[(1usize, 4usize), (4, 1)] {
        for crash_epoch in 0..world.num_periods() {
            let bits = assert_deterministic_across(&[1, 3], || {
                boundary_crash_bits(&world, kind, shards_before, shards_after, crash_epoch, 2)
            });
            assert_eq!(
                bits, batch,
                "CappedUCB crash after epoch {crash_epoch} diverged"
            );
        }
    }
}

/// Journaled run killed mid-epoch: producers below the victim delivered
/// their whole epoch chunk, the victim delivered `events_sent` events,
/// later producers were still queued behind the victim's lane (the
/// sequencer merges lanes in producer-id order, so that is exactly the
/// durable prefix a real mid-epoch crash leaves). Recovery hands back
/// per-producer acks; every lane reconnects and the stream finishes
/// through the real multi-producer sequencer. Returns
/// `(final_bits, suppressed_duplicates)`.
#[allow(clippy::too_many_arguments)]
fn producer_kill_bits(
    world: &GroundTruth,
    kind: StrategyKind,
    shards: usize,
    producers: usize,
    victim: usize,
    crash_epoch: usize,
    events_sent: usize,
    resend: bool,
) -> (Vec<u64>, u64) {
    let dir = fresh_dir("kill");
    let cfg = JournalConfig::new(&dir, 2);
    let mut svc = service_for(world, kind, shards);
    svc.attach_journal(&cfg).expect("attach journal");
    for period in &world.periods[..crash_epoch] {
        for event in period_events(period) {
            svc.push(event);
        }
        svc.push(ServiceEvent::PeriodTick);
    }
    let events = period_events(&world.periods[crash_epoch]);
    let bounds = chunk_bounds(events.len(), producers);
    let mut delivered = vec![0usize; producers];
    for p in 0..producers {
        let chunk = &events[bounds[p]..bounds[p + 1]];
        let take = if p < victim {
            chunk.len()
        } else if p == victim {
            events_sent.min(chunk.len())
        } else {
            0
        };
        for (s, &event) in chunk[..take].iter().enumerate() {
            match svc.push_stamped(p as u32, crash_epoch as u64, s as u64, event) {
                Ok(()) | Err(ServiceError::Rejected(_)) => {}
                Err(fatal) => panic!("fatal mid-epoch push: {fatal}"),
            }
        }
        delivered[p] = take;
    }
    drop(svc); // the crash, mid-epoch this time

    let recovered = recover(
        world.grid,
        world.match_policy,
        kind,
        config_for(world, shards),
        &cfg,
    )
    .expect("mid-epoch recovery");
    assert_eq!(recovered.service.periods_served() as usize, crash_epoch);
    // The victim's ack names exactly what it got through pre-crash.
    if delivered[victim] > 0 {
        let ack = recovered
            .acks
            .iter()
            .find(|a| a.producer == victim as u32)
            .expect("victim has durable events, so it has an ack");
        assert_eq!(
            (ack.epoch, ack.seq),
            (crash_epoch as u64, delivered[victim] as u64 - 1)
        );
    }

    let mut svc = recovered.service;
    let (ingest, handles) = IngestService::new(IngestConfig {
        producers,
        queue_capacity: world.total_workers() + world.total_tasks() + world.num_periods() + 1,
    });
    // Supervisor reconnect: every lane resumes at its durable watermark
    // (the victim optionally resends its whole epoch chunk to exercise
    // at-least-once delivery).
    let lanes: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let p = h.id() as usize;
            let resume_seq = if resend && p == victim {
                0
            } else {
                delivered[p] as u64
            };
            h.abandon().reconnect(crash_epoch as u64, resume_seq)
        })
        .collect();
    std::thread::scope(|scope| {
        for mut lane in lanes {
            let (world, delivered, events, bounds) = (&world, &delivered, &events, &bounds);
            scope.spawn(move || {
                let p = lane.id() as usize;
                let start = if resend && p == victim {
                    0
                } else {
                    delivered[p]
                };
                for &event in
                    &events[bounds[p]..bounds[p + 1]][start.min(bounds[p + 1] - bounds[p])..]
                {
                    lane.send(event);
                }
                lane.end_epoch();
                for period in &world.periods[crash_epoch + 1..] {
                    let events = period_events(period);
                    let bounds = chunk_bounds(events.len(), producers);
                    for &event in &events[bounds[p]..bounds[p + 1]] {
                        lane.send(event);
                    }
                    lane.end_epoch();
                }
            });
        }
        ingest.sequence(&mut svc).expect("post-recovery sequencing");
    });
    let suppressed = svc.suppressed_duplicates();
    let _ = std::fs::remove_dir_all(&dir);
    (svc.into_outcome().deterministic_bits(), suppressed)
}

/// The tentpole sweep, part 2: a seeded producer kill **mid-epoch at
/// every epoch**, at every producer count, with exact-resume and
/// at-least-once-resend reconnects. Suppressed duplicates are the last
/// word of the deterministic encoding; the resend run must match the
/// uninterrupted stream on every other word.
#[test]
fn producer_kill_mid_epoch_recovers_at_every_epoch() {
    let world = world();
    let kind = StrategyKind::Maps;
    let batch = batch_bits(&world, kind);
    let mut plan = FaultPlan::new(0xF00D, 8, 8, world.num_periods() as u32);
    for (pi, &producers) in DEFAULT_PRODUCER_COUNTS.iter().enumerate() {
        let shards = DEFAULT_SHARD_COUNTS[(pi + 1) % DEFAULT_SHARD_COUNTS.len()];
        for crash_epoch in 0..world.num_periods() {
            let (victim, events_sent) = loop {
                if let Fault::ProducerKill {
                    producer,
                    events_sent,
                    ..
                } = plan.next_fault()
                {
                    break (producer as usize % producers, events_sent as usize);
                }
            };
            // Exact resume: nothing resent, bits match in full — checked
            // across two rayon pool sizes (the full 1/2/3/8 sweep runs
            // in the boundary test above).
            let (bits, suppressed) = assert_deterministic_across(&[1, 3], || {
                producer_kill_bits(
                    &world,
                    kind,
                    shards,
                    producers,
                    victim,
                    crash_epoch,
                    events_sent,
                    false,
                )
            });
            assert_eq!(suppressed, 0);
            assert_eq!(
                bits, batch,
                "exact-resume kill (producer {victim}/{producers}, epoch {crash_epoch}) diverged"
            );
            // At-least-once: the victim resends its whole chunk; the
            // watermark suppresses exactly the previously durable part.
            let (mut resent, suppressed) = producer_kill_bits(
                &world,
                kind,
                shards,
                producers,
                victim,
                crash_epoch,
                events_sent,
                true,
            );
            let chunk_len = {
                let events = period_events(&world.periods[crash_epoch]);
                let bounds = chunk_bounds(events.len(), producers);
                bounds[victim + 1] - bounds[victim]
            };
            assert_eq!(suppressed, events_sent.min(chunk_len) as u64);
            // suppressed_duplicates sits just before the latency
            // telemetry words at the tail of the encoding.
            let idx = batch.len() - 1 - maps_telemetry::LatencyTelemetry::WORDS;
            let expect = batch.clone();
            assert_eq!(expect[idx], 0, "batch run suppressed nothing");
            assert_eq!(resent[idx], suppressed);
            resent[idx] = 0;
            assert_eq!(
                resent, expect,
                "resend run (producer {victim}/{producers}, epoch {crash_epoch}) perturbed \
                 the outcome beyond the suppression counter"
            );
        }
    }
}

/// Torn final journal record: seeded truncations of the file tail must
/// recover as `Tail::Torn`, drop exactly the invalid frame, and let the
/// producer re-send from its ack to a bit-identical finish.
#[test]
fn torn_final_record_truncates_and_recovers() {
    let world = world();
    let kind = StrategyKind::Maps;
    let batch = batch_bits(&world, kind);
    let mut plan = FaultPlan::new(0xBEEF, 1, 8, world.num_periods() as u32);
    let mut torn_cases = 0;
    while torn_cases < 5 {
        let Fault::TornTail { epoch, bytes } = plan.next_fault() else {
            continue;
        };
        torn_cases += 1;
        let (crash_epoch, bytes) = (epoch as usize, bytes as u64);
        let dir = fresh_dir("torn");
        let cfg = JournalConfig::new(&dir, 2);
        let mut svc = service_for(&world, kind, 2);
        svc.attach_journal(&cfg).expect("attach journal");
        for period in &world.periods[..crash_epoch] {
            for event in period_events(period) {
                svc.push(event);
            }
            svc.push(ServiceEvent::PeriodTick);
        }
        // Mid-epoch: the whole epoch's events are appended (buffered),
        // then the crash tears `bytes` off the final frame.
        for event in period_events(&world.periods[crash_epoch]) {
            svc.push(event);
        }
        drop(svc);
        let path = cfg.journal_path();
        let len = std::fs::metadata(&path).expect("journal exists").len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("reopen journal")
            .set_len(len - bytes)
            .expect("tear the tail");

        let recovered = recover(
            world.grid,
            world.match_policy,
            kind,
            config_for(&world, 4),
            &cfg,
        )
        .expect("torn-tail recovery");
        assert!(
            matches!(recovered.tail, Tail::Torn { dropped, .. } if dropped > 0),
            "a mid-frame truncation must classify as torn"
        );
        let mut svc = recovered.service;
        finish_serially(&mut svc, &world);
        assert_eq!(svc.suppressed_duplicates(), 0);
        assert_eq!(
            svc.into_outcome().deterministic_bits(),
            batch,
            "torn tail at epoch {crash_epoch} (-{bytes} bytes) diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Shard panic: the injected fault poisons the service with a typed
/// error (serial path), and the journal — whose barrier record was
/// durable *before* the tick ran — recovers the epoch deterministically.
#[test]
fn shard_panic_poisons_then_recovers() {
    let world = world();
    let kind = StrategyKind::CappedUcb;
    let batch = batch_bits(&world, kind);
    let mut plan = FaultPlan::new(0xCAFE, 4, 2, world.num_periods() as u32);
    let Fault::ShardPanic { shard, epoch } = (0..4)
        .map(|_| plan.next_fault())
        .find(|f| matches!(f, Fault::ShardPanic { .. }))
        .expect("plan cycles through every fault kind")
    else {
        unreachable!()
    };
    let (shard, crash_epoch) = (shard as usize % 2, epoch as usize);

    let dir = fresh_dir("shard_panic");
    let cfg = JournalConfig::new(&dir, 2);
    let mut svc = service_for(&world, kind, 2);
    svc.attach_journal(&cfg).expect("attach journal");
    svc.inject_shard_fault(shard as u32, crash_epoch as u32);
    let mut poisoned = None;
    'stream: for period in &world.periods {
        for event in period_events(period) {
            if let Err(e) = svc.try_push(event) {
                poisoned = Some(e);
                break 'stream;
            }
        }
        if let Err(e) = svc.try_push(ServiceEvent::PeriodTick) {
            poisoned = Some(e);
            break 'stream;
        }
    }
    let Some(ServiceError::Poisoned(panic)) = poisoned else {
        panic!("injected shard fault must poison the tick");
    };
    assert_eq!(panic.shard, shard);
    assert_eq!(panic.period as usize, crash_epoch);
    assert_eq!(svc.poisoned_by(), Some(&panic));
    drop(svc);

    let recovered = recover(
        world.grid,
        world.match_policy,
        kind,
        config_for(&world, 2),
        &cfg,
    )
    .expect("post-poison recovery");
    // The poisoned epoch's barrier was journaled before the tick ran,
    // so replay re-runs (and this time completes) it.
    assert_eq!(recovered.service.periods_served() as usize, crash_epoch + 1);
    let mut svc = recovered.service;
    finish_serially(&mut svc, &world);
    assert_eq!(svc.into_outcome().deterministic_bits(), batch);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sequencer death: the same poisoned tick, but through the spawned
/// background sequencer — `join` surfaces the typed error, producers
/// see a typed disconnect from `try_send` instead of hanging, and the
/// journal recovers the stream.
#[test]
fn sequencer_death_surfaces_typed_error_and_recovers() {
    let world = world();
    let kind = StrategyKind::Maps;
    let batch = batch_bits(&world, kind);
    let mut plan = FaultPlan::new(0xD00D, 2, 2, world.num_periods() as u32);
    let Fault::ShardPanic { shard, epoch } = (0..4)
        .map(|_| plan.next_fault())
        .find(|f| matches!(f, Fault::ShardPanic { .. }))
        .expect("plan cycles through every fault kind")
    else {
        unreachable!()
    };
    let (shard, crash_epoch) = (shard % 2, epoch);

    let dir = fresh_dir("seq_death");
    let cfg = JournalConfig::new(&dir, 2);
    let mut svc = service_for(&world, kind, 2);
    svc.attach_journal(&cfg).expect("attach journal");
    svc.inject_shard_fault(shard, crash_epoch);

    let producers = 2usize;
    let (ingest, handles) = IngestService::new(IngestConfig {
        producers,
        queue_capacity: 64,
    });
    let sequencer = ingest.spawn(svc);
    std::thread::scope(|scope| {
        for mut lane in handles {
            let world = &world;
            scope.spawn(move || {
                let p = lane.id() as usize;
                let timeout = std::time::Duration::from_millis(50);
                'stream: for period in &world.periods {
                    let events = period_events(period);
                    let bounds = chunk_bounds(events.len(), producers);
                    for &event in &events[bounds[p]..bounds[p + 1]] {
                        loop {
                            match lane.try_send(event, timeout) {
                                Ok(()) => break,
                                Err(SendError::Timeout) => continue,
                                // The sequencer died; a supervisor would
                                // now wait for recovery. Typed, no hang.
                                Err(SendError::Disconnected) => break 'stream,
                            }
                        }
                    }
                    if lane.try_send(ServiceEvent::PeriodTick, timeout)
                        == Err(SendError::Disconnected)
                    {
                        break 'stream;
                    }
                }
            });
        }
    });
    let death = sequencer
        .join()
        .expect_err("poisoned tick kills the sequencer");
    match death.service_error() {
        Some(ServiceError::Poisoned(panic)) => {
            assert_eq!(panic.shard as u32, shard);
            assert_eq!(panic.period, crash_epoch);
        }
        other => panic!("expected a typed shard poisoning, got {other:?}"),
    }

    let recovered = recover(
        world.grid,
        world.match_policy,
        kind,
        config_for(&world, 2),
        &cfg,
    )
    .expect("post-death recovery");
    let mut svc = recovered.service;
    finish_serially(&mut svc, &world);
    assert_eq!(svc.suppressed_duplicates(), 0);
    assert_eq!(svc.into_outcome().deterministic_bits(), batch);
    let _ = std::fs::remove_dir_all(&dir);
}
