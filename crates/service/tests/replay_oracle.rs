//! The tentpole acceptance oracle: `service_replay_matches_simulation`.
//!
//! Replaying a `GroundTruth` through the sharded online service must
//! reproduce `Simulation::run` **bit for bit** (every outcome field
//! except the wall-clock timing columns, via
//! `Outcome::deterministic_bits`) across
//!
//! * shard counts 1/2/4/8 ([`maps_testkit::DEFAULT_SHARD_COUNTS`]),
//! * all five `StrategyKind`s,
//! * both lifecycle policies (synthetic Consume, synthetic Relocate and
//!   a Beijing-like Relocate window with finite worker durations),
//! * rayon pools of 1/2/3/8 threads (the testkit harness; MAPS — the
//!   only strategy with its own parallel fan-out — gets the full sweep,
//!   the cheap baselines a 1/3-thread slice).

use maps_core::StrategyKind;
use maps_service::replay_with_options;
use maps_simulator::{
    BeijingConfig, GroundTruth, MatchPolicy, Outcome, SimOptions, Simulation, SyntheticConfig,
};
use maps_testkit::DEFAULT_SHARD_COUNTS;

fn worlds() -> Vec<(&'static str, GroundTruth)> {
    let relocate = SyntheticConfig {
        num_workers: 120,
        num_tasks: 480,
        periods: 20,
        grid_side: 4,
        ..SyntheticConfig::paper_default()
    };
    let mut consume = SyntheticConfig {
        num_workers: 100,
        num_tasks: 400,
        periods: 16,
        grid_side: 4,
        ..SyntheticConfig::paper_default()
    };
    consume.match_policy = MatchPolicy::Consume;
    vec![
        ("synthetic-relocate", relocate.build(3)),
        ("synthetic-consume", consume.build(5)),
        (
            "beijing-relocate",
            BeijingConfig::rush_hour(10).with_scale(0.01).build(2),
        ),
    ]
}

/// One full comparison: batch baseline vs the whole shard sweep, under
/// the current rayon pool. Returns the canon so the thread harness can
/// additionally assert thread-count invariance.
fn sweep_canon(world: &GroundTruth, kind: StrategyKind, options: SimOptions) -> Vec<u64> {
    let batch: Outcome = Simulation::new(world.clone(), kind)
        .with_options(options)
        .run();
    let canon = batch.deterministic_bits();
    for shards in DEFAULT_SHARD_COUNTS {
        let online = replay_with_options(world, kind, shards, options);
        assert_eq!(
            online.deterministic_bits(),
            canon,
            "{kind}: {shards}-shard replay diverged from the batch simulator"
        );
    }
    canon
}

#[test]
fn service_replay_matches_simulation() {
    let options = SimOptions::default();
    for (name, world) in worlds() {
        for kind in StrategyKind::ALL {
            // MAPS prices with its own rayon fan-out → full 1/2/3/8
            // sweep; the sequential baselines get a cheaper slice.
            let counts: &[usize] = if kind == StrategyKind::Maps {
                &maps_testkit::DEFAULT_THREAD_COUNTS
            } else {
                &[1, 3]
            };
            maps_testkit::assert_deterministic_across(counts, || {
                sweep_canon(&world, kind, options)
            });
            let _ = name;
        }
    }
}

/// The cap interacts with sharding (per-shard top-k merge vs one-index
/// query): sweep a few k values including the uncapped-fallback regime
/// (k ≥ live set) and k = 1.
#[test]
fn service_replay_matches_simulation_across_edge_caps() {
    let world = SyntheticConfig {
        num_workers: 80,
        num_tasks: 320,
        periods: 12,
        grid_side: 4,
        ..SyntheticConfig::paper_default()
    }
    .build(11);
    for k in [1usize, 3, 16, 10_000] {
        let options = SimOptions {
            max_edges_per_task: k,
            ..SimOptions::default()
        };
        sweep_canon(&world, StrategyKind::Maps, options);
    }
}
