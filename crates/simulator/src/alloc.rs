//! Tracking global allocator for the Memory(MB) experiment panels.
//!
//! The paper reports each strategy's memory cost (Figs. 6–8 bottom rows).
//! We measure peak heap usage with a thin wrapper around the system
//! allocator that maintains current/peak byte counters. The experiment
//! binaries install it via:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: maps_simulator::alloc::TrackingAllocator = TrackingAllocator::new();
//! ```
//!
//! and call [`TrackingAllocator::reset_peak`] before / [`TrackingAllocator::peak_bytes`]
//! after each run. The counters are lock-free atomics; the overhead is a
//! few nanoseconds per allocation, irrelevant next to the allocation
//! itself.

use std::alloc::{GlobalAlloc, Layout, System};
use sync::{AtomicUsize, Ordering};

/// This file's sync facade (the `sync-facade` lint rule requires one in
/// every lock-free protocol file). Unlike `maps-service`'s facade this
/// one is *always* the real `std` types, never the `maps-model` tracked
/// ones: the global allocator runs under every allocation in the
/// process, including the model checker's own scheduler bookkeeping, so
/// routing its counters through the checker would recurse into the
/// runtime being modeled. The counters are single-location diagnostic
/// RMWs with no cross-location publication to check — exactly the shape
/// exhaustive interleaving adds nothing to.
mod sync {
    // lint-allow(sync-facade): the allocator cannot be model-tracked — tracking allocates, which re-enters the allocator
    pub use std::sync::atomic::{AtomicUsize, Ordering};
}

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A byte-counting wrapper around the system allocator.
#[derive(Debug, Default)]
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Creates the allocator (const so it can be a `static`).
    pub const fn new() -> Self {
        Self
    }

    /// Currently outstanding heap bytes.
    pub fn current_bytes() -> usize {
        // ordering: standalone diagnostic counter; no other memory is
        // published through it.
        CURRENT.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`Self::reset_peak`].
    pub fn peak_bytes() -> usize {
        // ordering: standalone diagnostic counter, as above.
        PEAK.load(Ordering::Relaxed)
    }

    /// High-water mark in MiB.
    pub fn peak_mib() -> f64 {
        Self::peak_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Resets the peak to the current level (call between experiments).
    pub fn reset_peak() {
        // ordering: called between experiments on a quiesced process;
        // the counters are diagnostics, not synchronization.
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

fn add(size: usize) {
    // ordering: the RMW is atomic regardless of ordering; the counter
    // guards no other memory, so Relaxed costs nothing in correctness.
    let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Racy max update is fine: the peak is a diagnostic, not a ledger.
    // ordering: racy-max protocol; only the counter value itself
    // matters, never its ordering relative to other memory.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while cur > peak {
        // ordering: as above — the CAS only has to be atomic on PEAK.
        match PEAK.compare_exchange_weak(peak, cur, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn sub(size: usize) {
    // ordering: atomic RMW on a standalone diagnostic counter.
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: defers all allocation to `System`, only adjusting counters.
unsafe impl GlobalAlloc for TrackingAllocator {
    // SAFETY: caller upholds the `GlobalAlloc::alloc` contract
    // (non-zero-sized `layout`); we forward it to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            add(layout.size());
        }
        ptr
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // this `layout`; `System` sees exactly the pair it handed out.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub(layout.size());
    }

    // SAFETY: same contract as `alloc`, forwarded to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            add(layout.size());
        }
        ptr
    }

    // SAFETY: caller guarantees `ptr`/`layout` match a live allocation
    // and `new_size` is non-zero; forwarded to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            sub(layout.size());
            add(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not installed as #[global_allocator] in unit
    // tests (that would affect the whole test binary); we exercise the
    // counter arithmetic directly through the GlobalAlloc interface.
    // The counters are global statics, so everything lives in ONE test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn counters_track_alloc_dealloc_and_peak() {
        let a = TrackingAllocator::new();
        TrackingAllocator::reset_peak();
        let before = TrackingAllocator::current_bytes();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        // SAFETY: valid non-zero layout; realloc/dealloc receive the
        // pointer and layout of the preceding live allocation.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(TrackingAllocator::current_bytes(), before + 4096);
            assert!(TrackingAllocator::peak_bytes() >= before + 4096);
            let p2 = a.realloc(p, layout, 8192);
            assert!(!p2.is_null());
            assert_eq!(TrackingAllocator::current_bytes(), before + 8192);
            let layout2 = Layout::from_size_align(8192, 8).unwrap();
            a.dealloc(p2, layout2);
        }
        assert_eq!(TrackingAllocator::current_bytes(), before);

        // Peak high-water mark + reset semantics.
        let big = Layout::from_size_align(1 << 20, 8).unwrap();
        // SAFETY: valid non-zero layout; dealloc gets the same pair.
        unsafe {
            let p = a.alloc(big);
            a.dealloc(p, big);
        }
        assert!(TrackingAllocator::peak_bytes() >= 1 << 20);
        TrackingAllocator::reset_peak();
        assert_eq!(
            TrackingAllocator::peak_bytes(),
            TrackingAllocator::current_bytes()
        );
        assert!(TrackingAllocator::peak_mib() < 1.0);
    }
}
