//! Beijing-like taxi workload — the Table-4 substitute.
//!
//! The paper evaluates on proprietary Didi Chuxing taxi-calling logs
//! (Beijing, Jul–Dec 2016) sampled at two windows: 5–7 pm (heavy demand)
//! and 0–2 am (light demand), over a rectangle of 0.20° × 0.16° split
//! into 10 × 8 grids of 0.02° × 0.02°, worker range 3 km, `T = 120`
//! one-minute periods, and worker duration `δ_w ∈ {5,10,15,20,25}`.
//!
//! We cannot ship the proprietary logs, so this module synthesizes a
//! workload with the same *shape* (DESIGN.md §5):
//!
//! * identical aggregate counts (`|W| = 28210, |R| = 113372` rush;
//!   `|W| = 19006, |R| = 55659` night), grid geometry (we work in km:
//!   17.0 × 17.8 km), `a_w = 3` km and `T = 120`;
//! * spatial hotspot mixtures — three CBD-like clusters plus uniform
//!   background for the rush window, two flatter clusters at night;
//! * log-normal trip lengths (median ≈ 5 km, clipped to [0.5, 20] km),
//!   matching urban-taxi trip statistics;
//! * per-grid Normal valuations whose mean rises with the grid's
//!   demand share (hotspots are pricier), sampled once per seed;
//! * workers relocate to the destination after each trip and drive at
//!   0.5 km/period (30 km/h), so they serve multiple tasks — the paper's
//!   long-duration worker model.

use crate::truth::{GroundTask, GroundTruth, GroundWorker, MatchPolicy, PeriodData};
use maps_market::Demand;
use maps_market::DemandDistribution;
use maps_spatial::{GridSpec, Point, Rect};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Which of the paper's two sampled windows to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeijingWindow {
    /// Dataset #1: 5 pm – 7 pm, heavy demand.
    RushHour,
    /// Dataset #2: 0 am – 2 am, light demand.
    Night,
}

/// Configuration for the Beijing-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct BeijingConfig {
    /// Which window (fixes `|W|`, `|R|` and the hotspot mixture).
    pub window: BeijingWindow,
    /// Worker availability duration `δ_w` in periods (Fig. 8 x-axis).
    pub worker_duration: u32,
    /// Scale factor on `|W|` and `|R|` (1.0 = the paper's counts; tests
    /// use smaller scales).
    pub scale: f64,
}

impl BeijingConfig {
    /// Dataset #1 (rush hour) at full scale.
    pub fn rush_hour(worker_duration: u32) -> Self {
        Self {
            window: BeijingWindow::RushHour,
            worker_duration,
            scale: 1.0,
        }
    }

    /// Dataset #2 (night) at full scale.
    pub fn night(worker_duration: u32) -> Self {
        Self {
            window: BeijingWindow::Night,
            worker_duration,
            scale: 1.0,
        }
    }

    /// Scales both counts (for quick tests / CI-sized runs).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Paper counts for this window.
    pub fn paper_counts(&self) -> (usize, usize) {
        match self.window {
            BeijingWindow::RushHour => (28_210, 113_372),
            BeijingWindow::Night => (19_006, 55_659),
        }
    }

    /// Number of periods `T = 120` (2 h × 60 s periods).
    pub const PERIODS: usize = 120;

    /// Worker range `a_w = 3 km`.
    pub const WORKER_RADIUS_KM: f64 = 3.0;

    /// Region extent in km (0.20° lon ≈ 17.0 km, 0.16° lat ≈ 17.8 km).
    pub const REGION_KM: (f64, f64) = (17.0, 17.8);

    /// Builds the ground truth for this window, deterministic in `seed`.
    pub fn build(&self, seed: u64) -> GroundTruth {
        assert!(self.worker_duration > 0, "duration must be positive");
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ (0xBE111u64 << 4));
        let region = Rect::new(
            Point::ORIGIN,
            Point::new(Self::REGION_KM.0, Self::REGION_KM.1),
        );
        // 10 × 8 grids of ~1.7 × 2.2 km (0.02° × 0.02°).
        let grid = GridSpec::new(region, 10, 8);

        let (w_full, r_full) = self.paper_counts();
        let num_workers = ((w_full as f64) * self.scale).round().max(1.0) as usize;
        let num_tasks = ((r_full as f64) * self.scale).round().max(1.0) as usize;

        let hotspots: &[(Point, f64, f64)] = match self.window {
            // (centre, sigma_km, mixture weight)
            BeijingWindow::RushHour => &[
                (Point::new(5.0, 6.0), 1.5, 0.30),
                (Point::new(11.0, 9.0), 1.8, 0.25),
                (Point::new(8.0, 13.5), 2.2, 0.15),
            ],
            BeijingWindow::Night => &[
                (Point::new(6.5, 8.0), 2.5, 0.25),
                (Point::new(11.5, 11.0), 3.0, 0.15),
            ],
        };
        let background: f64 = 1.0 - hotspots.iter().map(|h| h.2).sum::<f64>();
        debug_assert!(background > 0.0);

        // Demand share per grid ∝ hotspot density at the cell centre;
        // valuations are pricier where demand concentrates.
        let mut demands = Vec::with_capacity(grid.num_cells());
        for cell in grid.cells() {
            let c = grid.cell_center(cell);
            let mut density = background / (region.area());
            for &(centre, sigma, weight) in hotspots {
                let d2 = c.euclidean_sq(centre);
                density += weight * (-d2 / (2.0 * sigma * sigma)).exp()
                    / (2.0 * std::f64::consts::PI * sigma * sigma);
            }
            // Normalize density into a [0,1] "heat" and map to μ ∈ [1.6, 3.0].
            let heat = (density * 60.0).min(1.0);
            let mu = 1.6 + 1.4 * heat + rng.gen_range(-0.1..=0.1);
            demands.push(Demand::paper_normal(mu.clamp(1.2, 3.4), 1.0));
        }

        let mut periods = vec![PeriodData::default(); Self::PERIODS];

        // Mild temporal ramp for rush hour (builds to a peak around the
        // 70th minute), flat-ish for night.
        let temporal_weight = |t: usize| -> f64 {
            let x = t as f64 / Self::PERIODS as f64;
            match self.window {
                BeijingWindow::RushHour => 0.6 + 0.8 * (-((x - 0.6) * (x - 0.6)) / 0.08).exp(),
                BeijingWindow::Night => 1.0 - 0.4 * x, // demand tapers off
            }
        };
        let weights: Vec<f64> = (0..Self::PERIODS).map(temporal_weight).collect();
        let weight_sum: f64 = weights.iter().sum();

        // Tasks.
        for _ in 0..num_tasks {
            let t = sample_weighted(&mut rng, &weights, weight_sum);
            let origin = sample_mixture(&mut rng, hotspots, background, region);
            let (destination, distance) = sample_trip(&mut rng, origin, region);
            let cell = grid.cell_of(origin);
            let valuation = demands[cell.index()].sample(&mut rng);
            periods[t].tasks.push(GroundTask {
                origin,
                destination,
                distance,
                valuation,
                cell,
            });
        }

        // Workers: arrivals uniform over time (drivers cruise all shift),
        // slightly more dispersed spatially than tasks.
        for _ in 0..num_workers {
            let t = rng.gen_range(0..Self::PERIODS);
            let origin = if rng.gen::<f64>() < 0.5 {
                sample_mixture(&mut rng, hotspots, background, region)
            } else {
                Point::new(
                    rng.gen_range(region.min.x..region.max.x),
                    rng.gen_range(region.min.y..region.max.y),
                )
            };
            periods[t].workers.push(GroundWorker {
                location: origin,
                radius: Self::WORKER_RADIUS_KM,
                duration: self.worker_duration,
            });
        }

        GroundTruth {
            grid,
            demands,
            periods,
            // 0.5 km/min = 30 km/h urban taxi speed.
            match_policy: MatchPolicy::Relocate { speed: 0.5 },
        }
    }
}

/// Samples a period index proportional to `weights`.
fn sample_weighted(rng: &mut impl Rng, weights: &[f64], sum: f64) -> usize {
    let mut x = rng.gen_range(0.0..sum);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Samples a location from the hotspot mixture + uniform background.
fn sample_mixture(
    rng: &mut impl Rng,
    hotspots: &[(Point, f64, f64)],
    background: f64,
    region: Rect,
) -> Point {
    let mut x = rng.gen_range(0.0..(background + hotspots.iter().map(|h| h.2).sum::<f64>()));
    for &(centre, sigma, weight) in hotspots {
        if x < weight {
            let p = Point::new(
                centre.x + sigma * gaussian(rng),
                centre.y + sigma * gaussian(rng),
            );
            return p.clamped(region);
        }
        x -= weight;
    }
    Point::new(
        rng.gen_range(region.min.x..region.max.x),
        rng.gen_range(region.min.y..region.max.y),
    )
}

/// Samples a destination with a log-normal trip length (median 5 km,
/// σ_log = 0.6, clipped to [0.5, 20] km) in a uniform direction.
fn sample_trip(rng: &mut impl Rng, origin: Point, region: Rect) -> (Point, f64) {
    let len = (5.0 * (0.6 * gaussian(rng)).exp()).clamp(0.5, 20.0);
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    let dest =
        Point::new(origin.x + len * theta.cos(), origin.y + len * theta.sin()).clamped(region);
    let mut distance = origin.euclidean(dest);
    if distance < 0.1 {
        distance = 0.1; // clipped into a corner; keep trips non-degenerate
    }
    (dest, distance)
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper_at_full_scale() {
        for cfg in [BeijingConfig::rush_hour(10), BeijingConfig::night(10)] {
            let (w, r) = cfg.paper_counts();
            // Use a tiny scale to keep the test fast but check the scaling
            // arithmetic at 1.0 separately.
            assert_eq!(
                ((w as f64) * 1.0).round() as usize,
                w,
                "identity scale must preserve counts"
            );
            assert!(r > w, "both windows have more tasks than workers");
        }
    }

    #[test]
    fn small_scale_world_is_valid() {
        let truth = BeijingConfig::rush_hour(10).with_scale(0.01).build(3);
        truth.validate().unwrap();
        assert_eq!(truth.num_periods(), 120);
        assert_eq!(truth.total_tasks(), 1134); // 113372 · 0.01 rounded
        assert_eq!(truth.total_workers(), 282);
        assert!(matches!(
            truth.match_policy,
            MatchPolicy::Relocate { speed } if (speed - 0.5).abs() < 1e-12
        ));
    }

    #[test]
    fn grid_is_10_by_8() {
        let truth = BeijingConfig::night(5).with_scale(0.01).build(1);
        assert_eq!(truth.grid.nx(), 10);
        assert_eq!(truth.grid.ny(), 8);
        assert_eq!(truth.grid.num_cells(), 80);
    }

    #[test]
    fn worker_duration_propagates() {
        let truth = BeijingConfig::night(25).with_scale(0.01).build(1);
        for p in &truth.periods {
            for w in &p.workers {
                assert_eq!(w.duration, 25);
                assert_eq!(w.radius, 3.0);
            }
        }
    }

    #[test]
    fn rush_hour_is_spatially_concentrated() {
        // The rush-hour mixture must put visibly more mass near the main
        // hotspot than the night mixture does.
        let rush = BeijingConfig::rush_hour(10).with_scale(0.02).build(5);
        let night = BeijingConfig::night(10).with_scale(0.02).build(5);
        let near_hotspot = |t: &GroundTruth| -> f64 {
            let centre = Point::new(5.0, 6.0);
            let total = t.total_tasks() as f64;
            let near = t
                .periods
                .iter()
                .flat_map(|p| &p.tasks)
                .filter(|task| task.origin.euclidean(centre) < 3.0)
                .count() as f64;
            near / total
        };
        assert!(near_hotspot(&rush) > near_hotspot(&night));
    }

    #[test]
    fn trip_lengths_are_clipped() {
        let truth = BeijingConfig::rush_hour(10).with_scale(0.01).build(9);
        for p in &truth.periods {
            for t in &p.tasks {
                // Destination clamping can shorten trips below 0.5 km but
                // never below the 0.1 km floor, and 20 km is the hard cap.
                assert!(t.distance >= 0.1 && t.distance <= 20.0 + 1e-9);
            }
        }
    }

    #[test]
    fn hotspot_grids_are_pricier() {
        let truth = BeijingConfig::rush_hour(10).with_scale(0.01).build(2);
        // Demand mean at the hotspot cell vs a far corner cell.
        let hot = truth.grid.cell_of(Point::new(5.0, 6.0));
        let cold = truth.grid.cell_of(Point::new(16.5, 0.5));
        let s_hot = truth.demands[hot.index()].survival(2.5);
        let s_cold = truth.demands[cold.index()].survival(2.5);
        assert!(
            s_hot > s_cold,
            "hotspot acceptance at p=2.5 ({s_hot}) should exceed corner ({s_cold})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BeijingConfig::night(15).with_scale(0.01).build(7);
        let b = BeijingConfig::night(15).with_scale(0.01).build(7);
        for (pa, pb) in a.periods.iter().zip(&b.periods) {
            assert_eq!(pa.tasks.len(), pb.tasks.len());
        }
    }
}
