//! # maps-simulator
//!
//! Workload generators and the platform simulator used to evaluate the
//! pricing strategies of the MAPS paper (Tong et al., SIGMOD 2018).
//!
//! * [`truth`] — the ground-truth world model: per-grid demand
//!   distributions, task arrivals with pre-sampled private valuations,
//!   worker arrivals with availability windows and a lifecycle policy.
//! * [`synthetic`] — the Table-3 synthetic generator (temporal Normal,
//!   spatial 2-D Gaussian, uniform destinations, per-grid Normal or
//!   Exponential valuations on `[1, 5]`).
//! * [`beijing`] — the Table-4 substitute: a Beijing-like taxi workload
//!   with hotspot mixtures, the paper's exact task/worker counts, a
//!   10×8 grid, 3 km worker range and configurable worker duration
//!   `δ_w` (see DESIGN.md §5 for the substitution rationale).
//! * [`platform`] — the per-period simulation loop: price → requesters
//!   accept/reject against their private valuations → maximum-weight
//!   market clearing → feedback to the strategy → worker lifecycle.
//! * [`lifecycle`] — the event-queue worker engine behind the default
//!   incremental platform path (arrive/expire/busy-release events
//!   feeding [`maps_core::PeriodGraphCache`]).
//! * [`probe`] — the ground-truth [`maps_core::DemandProbe`] used by the
//!   Algorithm-1 calibration phase.
//! * [`metrics`] — revenue / time / memory accounting (Figs. 6–8, 10).
//! * [`alloc`] — a tracking global allocator for the Memory(MB) panels.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod beijing;
pub mod lifecycle;
pub mod metrics;
pub mod platform;
pub mod probe;
pub mod synthetic;
pub mod truth;

pub use beijing::{BeijingConfig, BeijingWindow};
pub use lifecycle::WorkerLifecycle;
pub use metrics::{Outcome, RunningMoments};
pub use platform::{settle_period, PeriodSettlement, SimOptions, Simulation};
pub use probe::GroundTruthProbe;
pub use synthetic::{DemandKind, DemandShift, SyntheticConfig};
pub use truth::{GroundTask, GroundTruth, GroundWorker, MatchPolicy, PeriodData};

/// Commonly used items.
pub mod prelude {
    pub use crate::beijing::{BeijingConfig, BeijingWindow};
    pub use crate::metrics::{Outcome, RunningMoments};
    pub use crate::platform::{settle_period, PeriodSettlement, SimOptions, Simulation};
    pub use crate::probe::GroundTruthProbe;
    pub use crate::synthetic::{DemandKind, DemandShift, SyntheticConfig};
    pub use crate::truth::{GroundTask, GroundTruth, GroundWorker, MatchPolicy, PeriodData};
}
