//! Event-driven worker lifecycle feeding the incremental graph cache.
//!
//! The original platform loop kept every worker ever admitted in one
//! growing `Vec` and rescanned it each period to find the available set
//! — `O(all workers ever seen)` per period, with departed (`gone`)
//! workers never reclaimed. [`WorkerLifecycle`] replaces the rescan with
//! an explicit event queue: each worker's state transitions
//! (**arrive → available**, **match → busy → release**, **expire**) are
//! scheduled into per-period buckets when they become known, and a
//! period only touches the events that fire in it plus that period's
//! arrivals. The resulting churn feeds a [`PeriodGraphCache`], so the
//! spatial index is mutated, never rebuilt.
//!
//! Per-period event flow:
//!
//! ```text
//! arrivals ─────────────┐
//! expiries (events) ────┼─► staged churn ─► PeriodGraphCache::advance
//! busy releases (events)┘                   │ (dynamic index, id-stable)
//!                                           ▼
//!                          bipartite graph, bit-identical to the
//!                          from-scratch build on the live set
//! ```
//!
//! Worker ids are the admission order (`0, 1, 2, …` across the whole
//! horizon), and a busy worker re-enters under its *original* id, so the
//! materialized live set is always ordered exactly like the retained
//! rescan oracle's available list — which is what makes the incremental
//! simulation bit-identical to the scan path (`SimOptions::incremental =
//! false`).

use crate::truth::GroundWorker;
use maps_core::{PeriodGraphCache, TaskInput, WorkerChurn, WorkerInput};
use maps_matching::BipartiteGraph;
use maps_spatial::{GridSpec, Point};

/// Where a worker currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// In the live set (spatial index) — can be matched.
    Available,
    /// Matched under the relocate policy; re-enters at `busy_until`.
    Busy,
    /// Left permanently (consumed, expired, or released past horizon).
    Gone,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    /// First period in which the worker no longer exists (`t <
    /// expires_at` ⇔ within the availability window).
    expires_at: u32,
    status: Status,
}

/// A scheduled lifecycle transition.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The worker's availability window ends this period.
    Expire(u32),
    /// A busy worker re-enters this period at its relocation target.
    Release(u32, WorkerInput),
}

/// The event-queue worker engine of the incremental simulation path.
#[derive(Debug)]
pub struct WorkerLifecycle {
    cache: PeriodGraphCache,
    /// Per-worker state, indexed by id (admission order).
    records: Vec<Record>,
    /// `buckets[t]` holds the events firing at period `t`. Events past
    /// the horizon are unobservable and never scheduled.
    buckets: Vec<Vec<Event>>,
    /// Staged churn, applied by the next [`WorkerLifecycle::build_graph_capped`].
    arrivals: Vec<(u32, WorkerInput)>,
    departures: Vec<u32>,
    horizon: u32,
}

impl WorkerLifecycle {
    /// An empty lifecycle over `grid` for a `horizon`-period run,
    /// with the spatial index sized for `expected_workers`.
    pub fn new(grid: &GridSpec, horizon: usize, expected_workers: usize) -> Self {
        Self {
            cache: PeriodGraphCache::new(grid, expected_workers),
            records: Vec::new(),
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            arrivals: Vec::new(),
            departures: Vec::new(),
            horizon: horizon as u32,
        }
    }

    /// Starts period `t`: fires the period's scheduled events and admits
    /// this period's arrivals, staging the resulting churn. Call once
    /// per period, in order, followed by
    /// [`WorkerLifecycle::build_graph_capped`].
    pub fn begin_period(&mut self, t: u32, arrivals: &[GroundWorker]) {
        let mut events = std::mem::take(&mut self.buckets[t as usize]);
        for event in events.drain(..) {
            match event {
                Event::Expire(id) => {
                    let record = &mut self.records[id as usize];
                    if record.status == Status::Available {
                        self.departures.push(id);
                    }
                    record.status = Status::Gone;
                }
                Event::Release(id, input) => {
                    let record = &mut self.records[id as usize];
                    if record.status == Status::Busy && t < record.expires_at {
                        record.status = Status::Available;
                        self.arrivals.push((id, input));
                    } else {
                        record.status = Status::Gone;
                    }
                }
            }
        }
        // Hand the emptied bucket back so its allocation is reused by
        // events scheduled for later periods.
        self.buckets[t as usize] = events;
        for w in arrivals {
            let id = self.records.len() as u32;
            let expires_at = t.saturating_add(w.duration);
            // A worker whose window is already over (duration 0 —
            // rejected by `GroundTruth::validate`, but hand-built worlds
            // can carry it) still consumes an id so later ids keep their
            // scan-path positions, yet never enters the live set: the
            // scan oracle's `t < expires_at` check never admits it.
            if expires_at <= t {
                self.records.push(Record {
                    expires_at,
                    status: Status::Gone,
                });
                continue;
            }
            self.records.push(Record {
                expires_at,
                status: Status::Available,
            });
            self.schedule(expires_at, Event::Expire(id));
            self.arrivals.push((
                id,
                WorkerInput {
                    location: w.location,
                    radius: w.radius,
                    cell: self.cache.grid().cell_of(w.location),
                },
            ));
        }
    }

    /// Schedules `event` unless it fires past the horizon (then it is
    /// unobservable).
    fn schedule(&mut self, period: u32, event: Event) {
        if period < self.horizon {
            self.buckets[period as usize].push(event);
        }
    }

    /// Applies the staged churn and builds the period's capped graph
    /// through the cache (`k = max_edges_per_task`).
    pub fn build_graph_capped(&mut self, tasks: &[TaskInput], k: usize) -> BipartiteGraph {
        let graph = self.cache.advance_capped(
            WorkerChurn {
                arrivals: &self.arrivals,
                departures: &self.departures,
                relocations: &[],
            },
            tasks,
            k,
        );
        self.arrivals.clear();
        self.departures.clear();
        graph
    }

    /// Materializes the live worker list (ascending id — the graph's
    /// right-side order) into `out`.
    pub fn fill_worker_inputs(&self, out: &mut Vec<WorkerInput>) {
        self.cache.fill_worker_inputs(out);
    }

    /// Number of workers currently in the live set (staged churn from
    /// matches in the current period applies at the next build).
    pub fn live_count(&self) -> usize {
        self.cache.live_count()
    }

    /// Total workers ever admitted.
    pub fn admitted(&self) -> usize {
        self.records.len()
    }

    /// The id of the `dense`-th right-side vertex of the last built
    /// graph.
    pub fn id_of_dense(&self, dense: usize) -> u32 {
        self.cache.live_ids()[dense]
    }

    /// A matched worker leaves permanently (`MatchPolicy::Consume`).
    /// Staged as a departure for the next period's build.
    pub fn consume(&mut self, id: u32) {
        self.records[id as usize].status = Status::Gone;
        self.departures.push(id);
    }

    /// A matched worker travels to `destination` for `travel ≥ 1`
    /// periods (`MatchPolicy::Relocate`), re-entering at `t + travel`
    /// under the same id — or leaving for good when that lands past its
    /// expiry or the horizon.
    pub fn dispatch(&mut self, t: u32, id: u32, destination: Point, travel: u32) {
        debug_assert!(travel >= 1, "relocation travel takes at least one period");
        let radius = self
            .cache
            .worker(id)
            .expect("dispatched worker is live")
            .radius;
        self.departures.push(id);
        let busy_until = t.saturating_add(travel);
        let record = &mut self.records[id as usize];
        if busy_until < self.horizon && busy_until < record.expires_at {
            record.status = Status::Busy;
            let input = WorkerInput {
                location: destination,
                radius,
                cell: self.cache.grid().cell_of(destination),
            };
            self.buckets[busy_until as usize].push(Event::Release(id, input));
        } else {
            record.status = Status::Gone;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::{Point, Rect};

    fn grid() -> GridSpec {
        GridSpec::square(Rect::square(10.0), 2)
    }

    fn worker(x: f64, duration: u32) -> GroundWorker {
        GroundWorker {
            location: Point::new(x, 5.0),
            radius: 3.0,
            duration,
        }
    }

    /// The satellite's live-count assertion: expired workers leave the
    /// live set (no `gone`-flag leak), and the count matches a
    /// brute-force recomputation of the availability windows each
    /// period.
    #[test]
    fn live_count_matches_availability_windows() {
        let grid = grid();
        let horizon = 10usize;
        // Worker i arrives at period i with duration i+1 (alive over
        // [i, 2i+1)), so the live set both grows and drains.
        let mut engine = WorkerLifecycle::new(&grid, horizon, 8);
        for t in 0..horizon as u32 {
            let arrivals = vec![worker(1.0 + t as f64 * 0.5, t + 1)];
            engine.begin_period(t, &arrivals);
            let _ = engine.build_graph_capped(&[], 4);
            let expect = (0..=t).filter(|&i| t < i + i + 1).count();
            assert_eq!(engine.live_count(), expect, "period {t}");
        }
        assert_eq!(engine.admitted(), horizon);
        // Horizon end: everything with expiry ≤ 9 is already out.
        assert_eq!(engine.live_count(), 5);
    }

    /// A zero-duration arrival (`expires_at == t`) must never enter the
    /// live set — the scan oracle's `t < expires_at` check never admits
    /// it — while still consuming an id so later workers keep their
    /// scan-path positions.
    #[test]
    fn zero_duration_arrival_never_becomes_live() {
        let grid = grid();
        let mut engine = WorkerLifecycle::new(&grid, 4, 4);
        engine.begin_period(0, &[worker(1.0, 0), worker(2.0, u32::MAX)]);
        let _ = engine.build_graph_capped(&[], 4);
        assert_eq!(engine.live_count(), 1);
        assert_eq!(engine.admitted(), 2, "dead arrival still takes an id");
        assert_eq!(engine.id_of_dense(0), 1, "live worker keeps scan id");
        for t in 1..4 {
            engine.begin_period(t, &[]);
            let _ = engine.build_graph_capped(&[], 4);
            assert_eq!(engine.live_count(), 1, "period {t}");
        }
    }

    #[test]
    fn consume_departs_at_next_build() {
        let grid = grid();
        let mut engine = WorkerLifecycle::new(&grid, 4, 4);
        engine.begin_period(0, &[worker(1.0, u32::MAX), worker(2.0, u32::MAX)]);
        let _ = engine.build_graph_capped(&[], 4);
        assert_eq!(engine.live_count(), 2);
        engine.consume(engine.id_of_dense(0));
        // Still live until the next period's build applies the churn.
        assert_eq!(engine.live_count(), 2);
        engine.begin_period(1, &[]);
        let _ = engine.build_graph_capped(&[], 4);
        assert_eq!(engine.live_count(), 1);
        assert_eq!(engine.id_of_dense(0), 1);
    }

    #[test]
    fn dispatch_releases_at_destination_under_original_id() {
        let grid = grid();
        let mut engine = WorkerLifecycle::new(&grid, 6, 4);
        engine.begin_period(0, &[worker(1.0, u32::MAX)]);
        let _ = engine.build_graph_capped(&[], 4);
        engine.dispatch(0, 0, Point::new(9.0, 9.0), 2);
        engine.begin_period(1, &[worker(2.0, u32::MAX)]);
        let _ = engine.build_graph_capped(&[], 4);
        assert_eq!(engine.live_count(), 1, "worker 0 is busy in period 1");
        engine.begin_period(2, &[]);
        let _ = engine.build_graph_capped(&[], 4);
        assert_eq!(engine.live_count(), 2);
        let mut out = Vec::new();
        engine.fill_worker_inputs(&mut out);
        assert_eq!(out[0].location, Point::new(9.0, 9.0), "id 0 relocated");
        assert_eq!(out[0].cell, grid.cell_of(Point::new(9.0, 9.0)));
        assert_eq!(out[1].location, Point::new(2.0, 5.0));
    }

    #[test]
    fn release_past_expiry_or_horizon_is_dropped() {
        let grid = grid();
        let mut engine = WorkerLifecycle::new(&grid, 6, 4);
        // Expires at period 3; travel lands exactly on the expiry.
        engine.begin_period(0, &[worker(1.0, 3)]);
        let _ = engine.build_graph_capped(&[], 4);
        engine.dispatch(0, 0, Point::new(9.0, 9.0), 3);
        for t in 1..6 {
            engine.begin_period(t, &[]);
            let _ = engine.build_graph_capped(&[], 4);
            assert_eq!(engine.live_count(), 0, "period {t}");
        }
        // Travel past the horizon: never re-enters either.
        let mut engine = WorkerLifecycle::new(&grid, 3, 4);
        engine.begin_period(0, &[worker(1.0, u32::MAX)]);
        let _ = engine.build_graph_capped(&[], 4);
        engine.dispatch(0, 0, Point::new(9.0, 9.0), 5);
        for t in 1..3 {
            engine.begin_period(t, &[]);
            let _ = engine.build_graph_capped(&[], 4);
            assert_eq!(engine.live_count(), 0, "period {t}");
        }
    }

    #[test]
    fn expiry_of_busy_worker_cancels_release() {
        let grid = grid();
        let mut engine = WorkerLifecycle::new(&grid, 8, 4);
        // Expires at 2, dispatched at 0 with travel 4 (> expiry): the
        // expire event fires while busy and the release must be dropped.
        engine.begin_period(0, &[worker(1.0, 2)]);
        let _ = engine.build_graph_capped(&[], 4);
        engine.dispatch(0, 0, Point::new(9.0, 9.0), 4);
        for t in 1..8 {
            engine.begin_period(t, &[]);
            let _ = engine.build_graph_capped(&[], 4);
            assert_eq!(engine.live_count(), 0, "period {t}");
        }
    }
}
