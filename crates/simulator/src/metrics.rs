//! Simulation outcome metrics: the quantities plotted in Figs. 6–8 and 10
//! of the paper (Revenue, Time(secs), Memory(MB)) plus conservation
//! counters used by the integration tests.

use maps_telemetry::LatencyTelemetry;

/// Numerically stable streaming mean/variance (Welford's online
/// algorithm).
///
/// The platform's posted-price statistics previously accumulated
/// `Σx` and `Σx²` and finished with `E[x²] − E[x]²` — which cancels
/// catastrophically when the mean dwarfs the spread (long Beijing
/// horizons post millions of near-identical prices; the naive variance
/// of `10⁸ ± 0.01` is pure rounding noise, often negative). Welford's
/// recurrence keeps the *centered* second moment `M₂ = Σ(x − x̄)²`,
/// whose updates never subtract two large near-equal numbers.
///
/// Every consumer that must stay bit-identical (the sequential platform
/// loop and the sharded service's tick reducer) pushes prices through
/// this one type in the same order, so the floating-point op sequence —
/// and therefore the bit pattern of the resulting statistics — is
/// shared by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (`≥ 0`: each
    /// update adds `δ·δ'` with `δ`, `δ'` of equal sign).
    m2: f64,
}

impl RunningMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation `√(M₂/n)` (`0.0` when empty).
    pub fn population_std(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Exact internal state `(count, mean bits, M₂ bits)` for
    /// checkpointing; [`RunningMoments::from_raw`] restores it
    /// bit-identically.
    pub fn to_raw(&self) -> (u64, u64, u64) {
        (self.count, self.mean.to_bits(), self.m2.to_bits())
    }

    /// Rebuilds an accumulator from [`RunningMoments::to_raw`] output.
    pub fn from_raw(count: u64, mean_bits: u64, m2_bits: u64) -> Self {
        Self {
            count,
            mean: f64::from_bits(mean_bits),
            m2: f64::from_bits(m2_bits),
        }
    }
}

/// Aggregate result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Strategy display name ("MAPS", "BaseP", …).
    pub strategy: String,
    /// Total revenue over all `T` periods (the paper's Revenue axis).
    pub total_revenue: f64,
    /// Tasks issued (`|R|` actually materialized in the horizon).
    pub issued_tasks: u64,
    /// Tasks whose requesters accepted the posted price.
    pub accepted_tasks: u64,
    /// Accepted tasks actually served by a worker.
    pub matched_tasks: u64,
    /// Total wall-clock seconds spent inside `price_period` across all
    /// periods (the paper's Time axis: strategy computation time).
    pub pricing_secs: f64,
    /// Wall-clock seconds spent clearing the market (matching accepted
    /// tasks to workers) — identical work for every strategy, reported
    /// separately for transparency.
    pub clearing_secs: f64,
    /// Wall-clock seconds spent in the one-off calibration phase
    /// (Algorithm 1 probing), not included in `pricing_secs`.
    pub calibration_secs: f64,
    /// Peak heap usage in MiB if the tracking allocator was active
    /// (the paper's Memory axis).
    pub peak_memory_mib: Option<f64>,
    /// Revenue per period (for time-series inspection; length `T`).
    pub revenue_per_period: Vec<f64>,
    /// Task-weighted mean of the prices posted to requesters.
    pub mean_posted_price: f64,
    /// Task-weighted standard deviation of posted prices — BaseP is 0 by
    /// construction; dynamic strategies disperse.
    pub posted_price_std: f64,
    /// Total travel distance of served tasks (`Σ d_r` over matches).
    pub matched_distance: f64,
    /// Events the service's front door rejected (unknown worker ids,
    /// duplicate arrivals, …). `0` for the batch simulator, which never
    /// constructs invalid events. Deterministic: a pure function of the
    /// admitted event stream, so it participates in the replay contract.
    pub rejected_events: u64,
    /// Re-sent events dropped by the per-producer `(epoch, seq)`
    /// watermark during at-least-once recovery handoff. `0` for the
    /// batch simulator and for any run without producer retries.
    pub suppressed_duplicates: u64,
    /// Event-time latency histograms (admission→priced task wait,
    /// per-tick queue depth, live worker pool). Unlike the wall-clock
    /// columns these are pure functions of the admitted event stream —
    /// measured in canonical-replay-order positions, not seconds — so
    /// they participate in `deterministic_bits` and must agree bitwise
    /// across every engine, shard count, thread count and producer
    /// interleaving.
    pub latency: LatencyTelemetry,
}

impl Outcome {
    /// Fraction of issued tasks that accepted their price.
    pub fn acceptance_rate(&self) -> f64 {
        if self.issued_tasks == 0 {
            0.0
        } else {
            self.accepted_tasks as f64 / self.issued_tasks as f64
        }
    }

    /// Fraction of accepted tasks that were served.
    pub fn service_rate(&self) -> f64 {
        if self.accepted_tasks == 0 {
            0.0
        } else {
            self.matched_tasks as f64 / self.accepted_tasks as f64
        }
    }

    /// Conservation invariant: matched ⊆ accepted ⊆ issued.
    pub fn is_consistent(&self) -> bool {
        self.matched_tasks <= self.accepted_tasks && self.accepted_tasks <= self.issued_tasks
    }

    /// Average revenue per served task (`0` when nothing matched).
    pub fn revenue_per_match(&self) -> f64 {
        if self.matched_tasks == 0 {
            0.0
        } else {
            self.total_revenue / self.matched_tasks as f64
        }
    }

    /// Canonical bit-level encoding of every schedule-independent field
    /// — everything except the wall-clock columns (`pricing_secs`,
    /// `clearing_secs`, `calibration_secs`), which legitimately vary
    /// with thread count and machine load, and `peak_memory_mib`, which
    /// reflects the allocator schedule of whichever engine produced the
    /// outcome (the `--no-incremental` and `--shards` paths are
    /// bit-identical in *results* while allocating very differently).
    ///
    /// This is the equality the workspace's replay/determinism oracles
    /// compare: two outcomes with equal `deterministic_bits` agree
    /// bitwise on revenue, counters, per-period series, price moments
    /// and matched distance (floats via [`f64::to_bits`], so even a
    /// one-ulp rounding difference is caught).
    ///
    /// The body destructures `Outcome` *exhaustively* (no `..` rest
    /// pattern): adding a field to `Outcome` is a **compile error here**
    /// until the author decides whether the new field participates in
    /// the replay contract or joins the explicitly-discarded wall-clock
    /// group below. A hand-maintained field list would instead let a new
    /// field silently escape every replay and ingestion oracle in the
    /// workspace.
    pub fn deterministic_bits(&self) -> Vec<u64> {
        // Every schedule-independent field must be encoded; the four
        // discarded bindings are the deliberate exclusions documented
        // above (wall-clock timings + allocator-dependent peak memory).
        let Outcome {
            strategy,
            total_revenue,
            issued_tasks,
            accepted_tasks,
            matched_tasks,
            pricing_secs: _,
            clearing_secs: _,
            calibration_secs: _,
            peak_memory_mib: _,
            revenue_per_period,
            mean_posted_price,
            posted_price_std,
            matched_distance,
            rejected_events,
            suppressed_duplicates,
            latency,
        } = self;
        let mut out = Vec::with_capacity(
            18 + strategy.len() + revenue_per_period.len() + LatencyTelemetry::WORDS,
        );
        out.push(strategy.len() as u64);
        out.extend(strategy.bytes().map(u64::from));
        out.push(total_revenue.to_bits());
        out.push(*issued_tasks);
        out.push(*accepted_tasks);
        out.push(*matched_tasks);
        out.push(revenue_per_period.len() as u64);
        out.extend(revenue_per_period.iter().map(|r| r.to_bits()));
        out.push(mean_posted_price.to_bits());
        out.push(posted_price_std.to_bits());
        out.push(matched_distance.to_bits());
        out.push(*rejected_events);
        out.push(*suppressed_duplicates);
        latency.extend_words(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        let mut latency = LatencyTelemetry::new();
        latency.record_period(25, 80);
        latency.record_period(25, 75);
        Outcome {
            strategy: "MAPS".into(),
            total_revenue: 100.0,
            issued_tasks: 50,
            accepted_tasks: 40,
            matched_tasks: 30,
            pricing_secs: 0.5,
            clearing_secs: 0.1,
            calibration_secs: 0.2,
            peak_memory_mib: Some(12.5),
            revenue_per_period: vec![50.0, 50.0],
            mean_posted_price: 2.0,
            posted_price_std: 0.4,
            matched_distance: 60.0,
            rejected_events: 3,
            suppressed_duplicates: 1,
            latency,
        }
    }

    #[test]
    fn rates() {
        let o = outcome();
        assert!((o.acceptance_rate() - 0.8).abs() < 1e-12);
        assert!((o.service_rate() - 0.75).abs() < 1e-12);
        assert!(o.is_consistent());
    }

    #[test]
    fn degenerate_rates() {
        let o = Outcome {
            issued_tasks: 0,
            accepted_tasks: 0,
            matched_tasks: 0,
            ..outcome()
        };
        assert_eq!(o.acceptance_rate(), 0.0);
        assert_eq!(o.service_rate(), 0.0);
    }

    #[test]
    fn inconsistency_detected() {
        let o = Outcome {
            matched_tasks: 99,
            ..outcome()
        };
        assert!(!o.is_consistent());
    }

    #[test]
    fn revenue_per_match() {
        let o = outcome();
        assert!((o.revenue_per_match() - 100.0 / 30.0).abs() < 1e-12);
        let none = Outcome {
            matched_tasks: 0,
            ..outcome()
        };
        assert_eq!(none.revenue_per_match(), 0.0);
    }

    #[test]
    fn deterministic_bits_cover_every_replay_field() {
        let base = outcome();
        assert_eq!(base.deterministic_bits(), base.deterministic_bits());
        // Every schedule-independent field participates…
        for mutate in [
            |o: &mut Outcome| o.strategy = "SDE".into(),
            |o: &mut Outcome| o.total_revenue += 1e-9,
            |o: &mut Outcome| o.issued_tasks += 1,
            |o: &mut Outcome| o.accepted_tasks += 1,
            |o: &mut Outcome| o.matched_tasks += 1,
            |o: &mut Outcome| o.revenue_per_period.push(0.0),
            |o: &mut Outcome| o.revenue_per_period[0] = -o.revenue_per_period[0],
            |o: &mut Outcome| o.mean_posted_price = -o.mean_posted_price,
            |o: &mut Outcome| o.posted_price_std += f64::EPSILON,
            |o: &mut Outcome| o.matched_distance += 1.0,
            |o: &mut Outcome| o.rejected_events += 1,
            |o: &mut Outcome| o.suppressed_duplicates += 1,
            |o: &mut Outcome| o.latency.record_period(1, 1),
            |o: &mut Outcome| o.latency.queue_depth.record(7),
            |o: &mut Outcome| o.latency.worker_pool.record(7),
        ] {
            let mut changed = base.clone();
            mutate(&mut changed);
            assert_ne!(base.deterministic_bits(), changed.deterministic_bits());
        }
        // …while exactly four fields are excluded by design — the same
        // four discarded with `_` in the exhaustive destructuring inside
        // `deterministic_bits`: the wall-clock columns (`pricing_secs`,
        // `clearing_secs`, `calibration_secs`, thread- and load-
        // dependent) and `peak_memory_mib` (a property of whichever
        // engine's allocator schedule produced the outcome). Mutating
        // any of them must leave the bits unchanged.
        for mutate in [
            |o: &mut Outcome| o.pricing_secs += 1.0,
            |o: &mut Outcome| o.clearing_secs += 1.0,
            |o: &mut Outcome| o.calibration_secs += 1.0,
            |o: &mut Outcome| o.peak_memory_mib = None,
        ] {
            let mut timed = base.clone();
            mutate(&mut timed);
            assert_eq!(base.deterministic_bits(), timed.deterministic_bits());
        }
    }

    #[test]
    fn running_moments_match_two_pass_reference() {
        let xs: Vec<f64> = (0..1000).map(|i| 2.0 + (i % 7) as f64 * 0.25).collect();
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert_eq!(m.count(), 1000);
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.population_std() - var.sqrt()).abs() < 1e-12);
    }

    /// The satellite's regression shape: a high-mean/low-spread stream
    /// where `E[x²] − E[x]²` cancels catastrophically. The naive
    /// formula loses every significant digit of the variance (here it
    /// collapses to a clamped 0); Welford keeps it to full precision.
    #[test]
    fn welford_survives_catastrophic_cancellation() {
        let base = 1.0e8;
        let jitter = [0.0, 0.01, -0.01, 0.02, -0.02, 0.0, 0.01, -0.01];
        let mut m = RunningMoments::new();
        let (mut sum, mut sq_sum) = (0.0f64, 0.0f64);
        for &j in jitter.iter().cycle().take(4096) {
            let x = base + j;
            m.push(x);
            sum += x;
            sq_sum += x * x;
        }
        let n = 4096.0;
        let naive_std = (sq_sum / n - (sum / n) * (sum / n)).max(0.0).sqrt();
        let true_std = (jitter.iter().map(|j| j * j).sum::<f64>() / jitter.len() as f64).sqrt();
        // The naive estimate is off by orders of magnitude (or exactly
        // zero after the clamp)…
        assert!(
            (naive_std - true_std).abs() > 0.5 * true_std,
            "naive {naive_std} unexpectedly close to {true_std}"
        );
        // …while Welford recovers the true spread to ~6 digits.
        assert!(
            (m.population_std() - true_std).abs() < 1e-6 * true_std,
            "welford {} vs true {true_std}",
            m.population_std()
        );
        assert!((m.mean() - base).abs() < 1e-6);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_std(), 0.0);
    }
}
