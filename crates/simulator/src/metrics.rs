//! Simulation outcome metrics: the quantities plotted in Figs. 6–8 and 10
//! of the paper (Revenue, Time(secs), Memory(MB)) plus conservation
//! counters used by the integration tests.

/// Aggregate result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Strategy display name ("MAPS", "BaseP", …).
    pub strategy: String,
    /// Total revenue over all `T` periods (the paper's Revenue axis).
    pub total_revenue: f64,
    /// Tasks issued (`|R|` actually materialized in the horizon).
    pub issued_tasks: u64,
    /// Tasks whose requesters accepted the posted price.
    pub accepted_tasks: u64,
    /// Accepted tasks actually served by a worker.
    pub matched_tasks: u64,
    /// Total wall-clock seconds spent inside `price_period` across all
    /// periods (the paper's Time axis: strategy computation time).
    pub pricing_secs: f64,
    /// Wall-clock seconds spent clearing the market (matching accepted
    /// tasks to workers) — identical work for every strategy, reported
    /// separately for transparency.
    pub clearing_secs: f64,
    /// Wall-clock seconds spent in the one-off calibration phase
    /// (Algorithm 1 probing), not included in `pricing_secs`.
    pub calibration_secs: f64,
    /// Peak heap usage in MiB if the tracking allocator was active
    /// (the paper's Memory axis).
    pub peak_memory_mib: Option<f64>,
    /// Revenue per period (for time-series inspection; length `T`).
    pub revenue_per_period: Vec<f64>,
    /// Task-weighted mean of the prices posted to requesters.
    pub mean_posted_price: f64,
    /// Task-weighted standard deviation of posted prices — BaseP is 0 by
    /// construction; dynamic strategies disperse.
    pub posted_price_std: f64,
    /// Total travel distance of served tasks (`Σ d_r` over matches).
    pub matched_distance: f64,
}

impl Outcome {
    /// Fraction of issued tasks that accepted their price.
    pub fn acceptance_rate(&self) -> f64 {
        if self.issued_tasks == 0 {
            0.0
        } else {
            self.accepted_tasks as f64 / self.issued_tasks as f64
        }
    }

    /// Fraction of accepted tasks that were served.
    pub fn service_rate(&self) -> f64 {
        if self.accepted_tasks == 0 {
            0.0
        } else {
            self.matched_tasks as f64 / self.accepted_tasks as f64
        }
    }

    /// Conservation invariant: matched ⊆ accepted ⊆ issued.
    pub fn is_consistent(&self) -> bool {
        self.matched_tasks <= self.accepted_tasks && self.accepted_tasks <= self.issued_tasks
    }

    /// Average revenue per served task (`0` when nothing matched).
    pub fn revenue_per_match(&self) -> f64 {
        if self.matched_tasks == 0 {
            0.0
        } else {
            self.total_revenue / self.matched_tasks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        Outcome {
            strategy: "MAPS".into(),
            total_revenue: 100.0,
            issued_tasks: 50,
            accepted_tasks: 40,
            matched_tasks: 30,
            pricing_secs: 0.5,
            clearing_secs: 0.1,
            calibration_secs: 0.2,
            peak_memory_mib: Some(12.5),
            revenue_per_period: vec![50.0, 50.0],
            mean_posted_price: 2.0,
            posted_price_std: 0.4,
            matched_distance: 60.0,
        }
    }

    #[test]
    fn rates() {
        let o = outcome();
        assert!((o.acceptance_rate() - 0.8).abs() < 1e-12);
        assert!((o.service_rate() - 0.75).abs() < 1e-12);
        assert!(o.is_consistent());
    }

    #[test]
    fn degenerate_rates() {
        let o = Outcome {
            issued_tasks: 0,
            accepted_tasks: 0,
            matched_tasks: 0,
            ..outcome()
        };
        assert_eq!(o.acceptance_rate(), 0.0);
        assert_eq!(o.service_rate(), 0.0);
    }

    #[test]
    fn inconsistency_detected() {
        let o = Outcome {
            matched_tasks: 99,
            ..outcome()
        };
        assert!(!o.is_consistent());
    }

    #[test]
    fn revenue_per_match() {
        let o = outcome();
        assert!((o.revenue_per_match() - 100.0 / 30.0).abs() < 1e-12);
        let none = Outcome {
            matched_tasks: 0,
            ..outcome()
        };
        assert_eq!(none.revenue_per_match(), 0.0);
    }
}
