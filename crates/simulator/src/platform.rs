//! The per-period platform loop (Sec. 1 of the paper):
//!
//! 1. requesters submit tasks; the platform observes `R^t` and the
//!    available workers `W^t`;
//! 2. the pricing strategy posts one unit price per grid;
//! 3. each requester accepts iff their private valuation exceeds the
//!    price (`S(p) = Pr[v_r > p]`);
//! 4. the platform assigns workers to accepting requesters — the
//!    maximum-weight bipartite matching of Definition 5 — and collects
//!    `d_r · p_r` per served task;
//! 5. accept/reject outcomes are fed back to the strategy, and matched
//!    workers follow the scenario's lifecycle policy.

use crate::metrics::Outcome;
use crate::probe::GroundTruthProbe;
use crate::truth::{GroundTruth, MatchPolicy};
use maps_core::{
    build_period_graph_capped, BasePStrategy, CappedUcbStrategy, MapsStrategy, Observation,
    PeriodInput, PricingStrategy, SdeStrategy, SdrStrategy, StrategyKind, TaskInput, WorkerInput,
};
use maps_matching::MatchScratch;
use std::time::Instant;

/// Options for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Run the Algorithm-1 calibration phase before period 0 (learns the
    /// base price and seeds the UCB statistics). On by default.
    pub calibrate: bool,
    /// Seed for the calibration probe (the world itself is already
    /// materialized deterministically in [`GroundTruth`]).
    pub probe_seed: u64,
    /// Keep only each task's `k` nearest in-range workers when building
    /// the per-period bipartite graph (see
    /// [`maps_core::build_period_graph_capped`]); exact whenever fewer
    /// workers are simultaneously available. Keeps the paper's
    /// 500k-worker scalability run tractable.
    pub max_edges_per_task: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            calibrate: true,
            probe_seed: 0xCA11B,
            max_edges_per_task: 64,
        }
    }
}

/// A worker currently known to the platform.
#[derive(Debug, Clone, Copy)]
struct ActiveWorker {
    location: maps_spatial::Point,
    radius: f64,
    /// First period in which the worker is free again (relocation).
    busy_until: u32,
    /// Period at which the worker leaves the platform.
    expires_at: u32,
    /// Whether the worker left permanently (consumed).
    gone: bool,
}

/// Drives one pricing strategy through a [`GroundTruth`] world.
pub struct Simulation {
    truth: GroundTruth,
    strategy: Box<dyn PricingStrategy>,
    options: SimOptions,
}

impl Simulation {
    /// Creates a simulation for one of the five paper strategies with
    /// paper-default parameters.
    pub fn new(truth: GroundTruth, kind: StrategyKind) -> Self {
        let cells = truth.grid.num_cells();
        let strategy: Box<dyn PricingStrategy> = match kind {
            StrategyKind::Maps => Box::new(MapsStrategy::paper_default(cells)),
            StrategyKind::BaseP => Box::new(BasePStrategy::paper_default(cells)),
            StrategyKind::Sdr => Box::new(SdrStrategy::paper_default(cells)),
            StrategyKind::Sde => Box::new(SdeStrategy::paper_default(cells)),
            StrategyKind::CappedUcb => Box::new(CappedUcbStrategy::paper_default(cells)),
        };
        Self {
            truth,
            strategy,
            options: SimOptions::default(),
        }
    }

    /// Creates a simulation with a custom strategy instance.
    pub fn with_strategy(truth: GroundTruth, strategy: Box<dyn PricingStrategy>) -> Self {
        Self {
            truth,
            strategy,
            options: SimOptions::default(),
        }
    }

    /// Overrides the run options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full horizon and returns the aggregate outcome.
    pub fn run(mut self) -> Outcome {
        let grid = self.truth.grid;
        let t_total = self.truth.num_periods();
        let mut outcome = Outcome {
            strategy: self.strategy.name().to_string(),
            total_revenue: 0.0,
            issued_tasks: 0,
            accepted_tasks: 0,
            matched_tasks: 0,
            pricing_secs: 0.0,
            clearing_secs: 0.0,
            calibration_secs: 0.0,
            peak_memory_mib: None,
            revenue_per_period: Vec::with_capacity(t_total),
            mean_posted_price: 0.0,
            posted_price_std: 0.0,
            matched_distance: 0.0,
        };
        let mut price_sum = 0.0f64;
        let mut price_sq_sum = 0.0f64;

        if self.options.calibrate {
            let start = Instant::now();
            let mut probe = GroundTruthProbe::new(&self.truth.demands, self.options.probe_seed);
            self.strategy.calibrate(&mut probe);
            outcome.calibration_secs = start.elapsed().as_secs_f64();
        }

        let mut workers: Vec<ActiveWorker> = Vec::new();
        // Reused scratch buffers: everything the per-period loop needs
        // is allocated once here and recycled across the horizon.
        let mut avail_idx: Vec<u32> = Vec::new();
        let mut worker_inputs: Vec<WorkerInput> = Vec::new();
        let mut task_inputs: Vec<TaskInput> = Vec::new();
        let mut observations: Vec<Observation> = Vec::new();
        let mut keep: Vec<bool> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut clearing = MatchScratch::new();

        for t in 0..t_total {
            let period = &self.truth.periods[t];
            // Admit arrivals.
            for w in &period.workers {
                workers.push(ActiveWorker {
                    location: w.location,
                    radius: w.radius,
                    busy_until: t as u32,
                    expires_at: (t as u32).saturating_add(w.duration),
                    gone: false,
                });
            }
            // Available = not gone, not busy, not expired.
            avail_idx.clear();
            worker_inputs.clear();
            for (i, w) in workers.iter().enumerate() {
                if !w.gone && w.busy_until <= t as u32 && (t as u32) < w.expires_at {
                    avail_idx.push(i as u32);
                    worker_inputs.push(WorkerInput {
                        location: w.location,
                        radius: w.radius,
                        cell: grid.cell_of(w.location),
                    });
                }
            }
            task_inputs.clear();
            task_inputs.extend(period.tasks.iter().map(|task| TaskInput {
                origin: task.origin,
                distance: task.distance,
                cell: task.cell,
            }));
            outcome.issued_tasks += task_inputs.len() as u64;

            let graph = build_period_graph_capped(
                &grid,
                &task_inputs,
                &worker_inputs,
                self.options.max_edges_per_task,
            );
            let input = PeriodInput {
                grid: &grid,
                tasks: &task_inputs,
                workers: &worker_inputs,
                graph: &graph,
            };

            let start = Instant::now();
            let schedule = self.strategy.price_period(&input);
            outcome.pricing_secs += start.elapsed().as_secs_f64();

            // Requesters decide; the platform observes every decision.
            observations.clear();
            keep.clear();
            keep.resize(task_inputs.len(), false);
            weights.clear();
            weights.resize(task_inputs.len(), 0.0);
            for (i, (task, input_task)) in period.tasks.iter().zip(&task_inputs).enumerate() {
                let price = schedule.price(input_task.cell);
                let accepted = task.valuation > price;
                keep[i] = accepted;
                weights[i] = input_task.distance * price;
                price_sum += price;
                price_sq_sum += price * price;
                observations.push(Observation {
                    cell: input_task.cell,
                    price,
                    accepted,
                });
            }
            outcome.accepted_tasks += keep.iter().filter(|&&k| k).count() as u64;

            // Clear the market over the accepting subgraph, through the
            // masked zero-allocation kernel (no `filter_left` copy).
            let start = Instant::now();
            let revenue = graph
                .masked(&keep)
                .max_weight_value(&weights, &mut clearing);
            outcome.clearing_secs += start.elapsed().as_secs_f64();

            outcome.total_revenue += revenue;
            outcome.revenue_per_period.push(revenue);

            // Worker lifecycle for matched pairs (task indices are the
            // original period indices — the masked kernel does not
            // renumber).
            for (l, w_input_idx) in clearing.matched_pairs() {
                outcome.matched_tasks += 1;
                let task = &period.tasks[l];
                outcome.matched_distance += task.distance;
                let worker = &mut workers[avail_idx[w_input_idx as usize] as usize];
                match self.truth.match_policy {
                    MatchPolicy::Consume => worker.gone = true,
                    MatchPolicy::Relocate { speed } => {
                        let travel = (task.distance / speed).ceil().max(1.0) as u32;
                        worker.busy_until = (t as u32).saturating_add(travel);
                        worker.location = task.destination;
                    }
                }
            }

            self.strategy.observe(&observations);
        }

        if outcome.issued_tasks > 0 {
            let n = outcome.issued_tasks as f64;
            outcome.mean_posted_price = price_sum / n;
            outcome.posted_price_std = (price_sq_sum / n
                - outcome.mean_posted_price * outcome.mean_posted_price)
                .max(0.0)
                .sqrt();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;
    use crate::truth::{GroundTask, GroundWorker, PeriodData};
    use maps_market::Demand;
    use maps_spatial::{GridSpec, Point, Rect};

    fn small_world(seed: u64) -> GroundTruth {
        SyntheticConfig {
            num_workers: 150,
            num_tasks: 600,
            periods: 25,
            grid_side: 4,
            ..SyntheticConfig::paper_default()
        }
        .build(seed)
    }

    #[test]
    fn all_strategies_run_and_conserve() {
        let world = small_world(3);
        for kind in StrategyKind::ALL {
            let outcome = Simulation::new(world.clone(), kind).run();
            assert!(outcome.is_consistent(), "{kind}: {outcome:?}");
            assert_eq!(outcome.issued_tasks, 600, "{kind}");
            assert!(outcome.total_revenue >= 0.0);
            assert_eq!(outcome.revenue_per_period.len(), 25);
            assert!(
                (outcome.total_revenue - outcome.revenue_per_period.iter().sum::<f64>()).abs()
                    < 1e-9
            );
            assert_eq!(outcome.strategy, kind.name());
        }
    }

    #[test]
    fn consume_policy_bounds_matches_by_worker_count() {
        let mut cfg = SyntheticConfig {
            num_workers: 150,
            num_tasks: 600,
            periods: 25,
            grid_side: 4,
            ..SyntheticConfig::paper_default()
        };
        cfg.match_policy = MatchPolicy::Consume;
        let outcome = Simulation::new(cfg.build(5), StrategyKind::BaseP).run();
        assert!(outcome.matched_tasks <= 150);
    }

    #[test]
    fn maps_beats_flat_base_price_on_default_world() {
        // The paper's headline: MAPS yields the highest revenue. On a
        // small but supply-constrained world MAPS must beat BaseP.
        let world = small_world(11);
        let maps = Simulation::new(world.clone(), StrategyKind::Maps).run();
        let base = Simulation::new(world, StrategyKind::BaseP).run();
        assert!(
            maps.total_revenue > base.total_revenue * 0.95,
            "MAPS {} vs BaseP {}",
            maps.total_revenue,
            base.total_revenue
        );
    }

    #[test]
    fn deterministic_given_same_world_and_seed() {
        let a = Simulation::new(small_world(7), StrategyKind::Maps).run();
        let b = Simulation::new(small_world(7), StrategyKind::Maps).run();
        assert_eq!(a.total_revenue, b.total_revenue);
        assert_eq!(a.matched_tasks, b.matched_tasks);
    }

    #[test]
    fn no_calibration_option() {
        let world = small_world(9);
        let outcome = Simulation::new(world, StrategyKind::Maps)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        assert_eq!(outcome.calibration_secs, 0.0);
        assert!(outcome.is_consistent());
    }

    /// Hand-built two-period world exercising the Relocate policy.
    #[test]
    fn relocate_policy_reuses_workers() {
        let grid = GridSpec::square(Rect::square(10.0), 1);
        let demands = vec![Demand::paper_normal(3.5, 0.5)]; // high valuations
        let mk_task = |x: f64| {
            let origin = Point::new(x, 1.0);
            let destination = Point::new(x, 2.0);
            GroundTask {
                origin,
                destination,
                distance: 1.0,
                valuation: 4.9, // accepts any ladder price
                cell: grid.cell_of(origin),
            }
        };
        let worker = GroundWorker {
            location: Point::new(1.0, 1.0),
            radius: 9.0,
            duration: u32::MAX,
        };
        // Period 0: one task; at speed 0.5 the unit trip takes
        // ⌈1.0/0.5⌉ = 2 periods, so the worker is busy through period 1
        // and free again in period 2.
        let truth = GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![mk_task(1.0)],
                    workers: vec![worker],
                },
                PeriodData {
                    tasks: vec![mk_task(2.0)],
                    workers: vec![],
                },
                PeriodData {
                    tasks: vec![mk_task(3.0)],
                    workers: vec![],
                },
            ],
            match_policy: MatchPolicy::Relocate { speed: 0.5 },
        };
        let outcome = Simulation::new(truth, StrategyKind::BaseP)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        // Period 0 matched; period 1 the worker is busy; period 2 matched.
        assert_eq!(outcome.matched_tasks, 2);
        assert_eq!(outcome.accepted_tasks, 3);
    }

    #[test]
    fn consume_policy_single_use() {
        let grid = GridSpec::square(Rect::square(10.0), 1);
        let demands = vec![Demand::paper_normal(3.5, 0.5)];
        let origin = Point::new(1.0, 1.0);
        let task = GroundTask {
            origin,
            destination: Point::new(1.0, 2.0),
            distance: 1.0,
            valuation: 4.9,
            cell: grid.cell_of(origin),
        };
        let truth = GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![task],
                    workers: vec![GroundWorker {
                        location: Point::new(1.0, 1.0),
                        radius: 5.0,
                        duration: u32::MAX,
                    }],
                },
                PeriodData {
                    tasks: vec![task],
                    workers: vec![],
                },
            ],
            match_policy: MatchPolicy::Consume,
        };
        let outcome = Simulation::new(truth, StrategyKind::BaseP)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        assert_eq!(
            outcome.matched_tasks, 1,
            "consumed worker cannot serve twice"
        );
    }

    #[test]
    fn worker_duration_expires() {
        let grid = GridSpec::square(Rect::square(10.0), 1);
        let demands = vec![Demand::paper_normal(3.5, 0.5)];
        let origin = Point::new(1.0, 1.0);
        let task = GroundTask {
            origin,
            destination: Point::new(1.0, 2.0),
            distance: 1.0,
            valuation: 4.9,
            cell: grid.cell_of(origin),
        };
        let truth = GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![],
                    workers: vec![GroundWorker {
                        location: Point::new(1.0, 1.0),
                        radius: 5.0,
                        duration: 2, // periods 0 and 1 only
                    }],
                },
                PeriodData::default(),
                PeriodData {
                    tasks: vec![task],
                    workers: vec![],
                },
            ],
            match_policy: MatchPolicy::Consume,
        };
        let outcome = Simulation::new(truth, StrategyKind::BaseP)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        assert_eq!(outcome.matched_tasks, 0, "expired worker must not serve");
    }
}
