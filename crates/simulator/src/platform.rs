//! The per-period platform loop (Sec. 1 of the paper):
//!
//! 1. requesters submit tasks; the platform observes `R^t` and the
//!    available workers `W^t`;
//! 2. the pricing strategy posts one unit price per grid;
//! 3. each requester accepts iff their private valuation exceeds the
//!    price (`S(p) = Pr[v_r > p]`);
//! 4. the platform assigns workers to accepting requesters — the
//!    maximum-weight bipartite matching of Definition 5 — and collects
//!    `d_r · p_r` per served task;
//! 5. accept/reject outcomes are fed back to the strategy, and matched
//!    workers follow the scenario's lifecycle policy.

use crate::lifecycle::WorkerLifecycle;
use crate::metrics::{Outcome, RunningMoments};
use crate::probe::GroundTruthProbe;
use crate::truth::{GroundTruth, GroundWorker, MatchPolicy};
use maps_core::{
    build_period_graph_capped, paper_default_strategy, Observation, PeriodInput, PriceSchedule,
    PricingStrategy, StrategyKind, TaskInput, WorkerInput,
};
use maps_matching::{BipartiteGraph, MatchScratch};
use maps_spatial::{GridSpec, Point};
use std::time::Instant;

/// Results of one period's requester decisions and market clearing.
#[derive(Debug, Clone, Copy)]
pub struct PeriodSettlement {
    /// Revenue collected from the cleared market (`Σ d_r · p_r` over
    /// the maximum-weight matching of the accepting subgraph).
    pub revenue: f64,
    /// How many requesters accepted their posted price.
    pub accepted: u64,
    /// Wall-clock seconds of the market-clearing solve.
    pub clearing_secs: f64,
}

/// One period's requester decisions + market clearing: each requester
/// accepts iff their private valuation exceeds the posted price, the
/// posted prices feed the Welford moments and the observation log in
/// task order, and the market clears over the accepting subgraph
/// through the masked zero-allocation kernel.
///
/// This is the **shared per-period core**: the batch loop
/// ([`Simulation::run`]) and the sharded online service's tick reducer
/// both call it, so their float-op sequences — and therefore their
/// bit-level outcomes — agree by construction rather than by mirrored
/// code. The matched pairs stay readable through `clearing` for the
/// caller's lifecycle step (task indices are the original period
/// indices — the masked kernel does not renumber).
#[allow(clippy::too_many_arguments)]
pub fn settle_period(
    tasks: &[crate::truth::GroundTask],
    task_inputs: &[TaskInput],
    schedule: &PriceSchedule,
    graph: &BipartiteGraph,
    price_moments: &mut crate::metrics::RunningMoments,
    observations: &mut Vec<Observation>,
    keep: &mut Vec<bool>,
    weights: &mut Vec<f64>,
    clearing: &mut MatchScratch,
) -> PeriodSettlement {
    observations.clear();
    keep.clear();
    keep.resize(task_inputs.len(), false);
    weights.clear();
    weights.resize(task_inputs.len(), 0.0);
    for (i, (task, input_task)) in tasks.iter().zip(task_inputs).enumerate() {
        let price = schedule.price(input_task.cell);
        let accepted = task.valuation > price;
        keep[i] = accepted;
        weights[i] = input_task.distance * price;
        price_moments.push(price);
        observations.push(Observation {
            cell: input_task.cell,
            price,
            accepted,
        });
    }
    let accepted = keep.iter().filter(|&&k| k).count() as u64;
    // lint-allow(det-wallclock): clearing_secs is timing telemetry, excluded from deterministic_bits
    let start = Instant::now();
    let revenue = graph.masked(keep).max_weight_value(weights, clearing);
    PeriodSettlement {
        revenue,
        accepted,
        clearing_secs: start.elapsed().as_secs_f64(),
    }
}

/// Options for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Run the Algorithm-1 calibration phase before period 0 (learns the
    /// base price and seeds the UCB statistics). On by default.
    pub calibrate: bool,
    /// Seed for the calibration probe (the world itself is already
    /// materialized deterministically in [`GroundTruth`]).
    pub probe_seed: u64,
    /// Keep only each task's `k` nearest in-range workers when building
    /// the per-period bipartite graph (see
    /// [`maps_core::build_period_graph_capped`]); exact whenever fewer
    /// workers are simultaneously available. Keeps the paper's
    /// 500k-worker scalability run tractable.
    pub max_edges_per_task: usize,
    /// Drive the period loop through the event-queue worker lifecycle
    /// and the incremental [`maps_core::PeriodGraphCache`] (on by
    /// default): per-period cost scales with worker *churn* instead of
    /// with every worker ever admitted. The retained rescan-and-rebuild
    /// path (`incremental = false`) is the oracle — both produce
    /// bit-identical outcomes (wall-clock columns aside), enforced by
    /// `incremental_run_matches_scan_oracle` below.
    pub incremental: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            calibrate: true,
            probe_seed: 0xCA11B,
            max_edges_per_task: 64,
            incremental: true,
        }
    }
}

/// A worker currently known to the scan-path platform.
#[derive(Debug, Clone, Copy)]
struct ActiveWorker {
    location: maps_spatial::Point,
    radius: f64,
    /// First period in which the worker is free again (relocation).
    busy_until: u32,
    /// Period at which the worker leaves the platform.
    expires_at: u32,
    /// Whether the worker left permanently (consumed).
    gone: bool,
}

/// How the period loop materializes the available workers, builds the
/// graph, and applies post-match lifecycle transitions. Two engines share
/// the loop in [`Simulation::drive`]:
///
/// * [`ScanEngine`] — the retained from-scratch oracle: rescans every
///   admitted worker each period and rebuilds the spatial index.
/// * [`IncrementalEngine`] — the event-queue lifecycle feeding the
///   [`maps_core::PeriodGraphCache`].
trait PeriodEngine {
    /// Starts period `t` and admits its arrivals.
    fn begin_period(&mut self, t: u32, arrivals: &[GroundWorker]);
    /// Builds the period's capped bipartite graph over the available
    /// workers and leaves the matching worker list readable through
    /// [`PeriodEngine::worker_inputs`].
    fn build_graph(&mut self, tasks: &[TaskInput], k: usize) -> BipartiteGraph;
    /// The available workers, in the graph's right-side order.
    fn worker_inputs(&self) -> &[WorkerInput];
    /// Right-side vertex `dense` was matched and leaves permanently.
    fn consume(&mut self, dense: usize);
    /// Right-side vertex `dense` was matched and relocates to
    /// `destination`, busy for `travel ≥ 1` periods.
    fn dispatch(&mut self, t: u32, dense: usize, destination: Point, travel: u32);
}

/// The original rescan path: every admitted worker is kept (and scanned)
/// forever, the graph is rebuilt from scratch per period.
struct ScanEngine {
    grid: GridSpec,
    workers: Vec<ActiveWorker>,
    avail_idx: Vec<u32>,
    worker_inputs: Vec<WorkerInput>,
}

impl ScanEngine {
    fn new(grid: GridSpec) -> Self {
        Self {
            grid,
            workers: Vec::new(),
            avail_idx: Vec::new(),
            worker_inputs: Vec::new(),
        }
    }
}

impl PeriodEngine for ScanEngine {
    fn begin_period(&mut self, t: u32, arrivals: &[GroundWorker]) {
        for w in arrivals {
            self.workers.push(ActiveWorker {
                location: w.location,
                radius: w.radius,
                busy_until: t,
                expires_at: t.saturating_add(w.duration),
                gone: false,
            });
        }
        // Available = not gone, not busy, not expired.
        self.avail_idx.clear();
        self.worker_inputs.clear();
        for (i, w) in self.workers.iter().enumerate() {
            if !w.gone && w.busy_until <= t && t < w.expires_at {
                self.avail_idx.push(i as u32);
                self.worker_inputs.push(WorkerInput {
                    location: w.location,
                    radius: w.radius,
                    cell: self.grid.cell_of(w.location),
                });
            }
        }
    }

    fn build_graph(&mut self, tasks: &[TaskInput], k: usize) -> BipartiteGraph {
        build_period_graph_capped(&self.grid, tasks, &self.worker_inputs, k)
    }

    fn worker_inputs(&self) -> &[WorkerInput] {
        &self.worker_inputs
    }

    fn consume(&mut self, dense: usize) {
        self.workers[self.avail_idx[dense] as usize].gone = true;
    }

    fn dispatch(&mut self, t: u32, dense: usize, destination: Point, travel: u32) {
        let worker = &mut self.workers[self.avail_idx[dense] as usize];
        worker.busy_until = t.saturating_add(travel);
        worker.location = destination;
    }
}

/// The churn-driven path: [`WorkerLifecycle`] events feed the
/// incremental graph cache.
struct IncrementalEngine {
    lifecycle: WorkerLifecycle,
    worker_inputs: Vec<WorkerInput>,
}

impl IncrementalEngine {
    fn new(grid: &GridSpec, horizon: usize, expected_workers: usize) -> Self {
        Self {
            lifecycle: WorkerLifecycle::new(grid, horizon, expected_workers),
            worker_inputs: Vec::new(),
        }
    }
}

impl PeriodEngine for IncrementalEngine {
    fn begin_period(&mut self, t: u32, arrivals: &[GroundWorker]) {
        self.lifecycle.begin_period(t, arrivals);
    }

    fn build_graph(&mut self, tasks: &[TaskInput], k: usize) -> BipartiteGraph {
        let graph = self.lifecycle.build_graph_capped(tasks, k);
        self.lifecycle.fill_worker_inputs(&mut self.worker_inputs);
        graph
    }

    fn worker_inputs(&self) -> &[WorkerInput] {
        &self.worker_inputs
    }

    fn consume(&mut self, dense: usize) {
        self.lifecycle.consume(self.lifecycle.id_of_dense(dense));
    }

    fn dispatch(&mut self, t: u32, dense: usize, destination: Point, travel: u32) {
        self.lifecycle
            .dispatch(t, self.lifecycle.id_of_dense(dense), destination, travel);
    }
}

/// Drives one pricing strategy through a [`GroundTruth`] world.
pub struct Simulation {
    truth: GroundTruth,
    strategy: Box<dyn PricingStrategy>,
    options: SimOptions,
}

impl Simulation {
    /// Creates a simulation for one of the five paper strategies with
    /// paper-default parameters.
    pub fn new(truth: GroundTruth, kind: StrategyKind) -> Self {
        let strategy = paper_default_strategy(kind, truth.grid.num_cells());
        Self {
            truth,
            strategy,
            options: SimOptions::default(),
        }
    }

    /// Creates a simulation with a custom strategy instance.
    pub fn with_strategy(truth: GroundTruth, strategy: Box<dyn PricingStrategy>) -> Self {
        Self {
            truth,
            strategy,
            options: SimOptions::default(),
        }
    }

    /// Overrides the run options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full horizon and returns the aggregate outcome.
    ///
    /// Dispatches on [`SimOptions::incremental`]: the event-queue
    /// lifecycle + graph cache (default), or the retained
    /// rescan-and-rebuild oracle. Both paths produce bit-identical
    /// outcomes (wall-clock columns aside).
    pub fn run(self) -> Outcome {
        let grid = self.truth.grid;
        if self.options.incremental {
            let engine =
                IncrementalEngine::new(&grid, self.truth.num_periods(), self.truth.total_workers());
            self.drive(engine)
        } else {
            self.drive(ScanEngine::new(grid))
        }
    }

    /// The shared period loop: price → accept/reject → clear → feedback
    /// → lifecycle, with worker materialization delegated to `engine`.
    fn drive(mut self, mut engine: impl PeriodEngine) -> Outcome {
        let t_total = self.truth.num_periods();
        let mut outcome = Outcome {
            strategy: self.strategy.name().to_string(),
            total_revenue: 0.0,
            issued_tasks: 0,
            accepted_tasks: 0,
            matched_tasks: 0,
            pricing_secs: 0.0,
            clearing_secs: 0.0,
            calibration_secs: 0.0,
            peak_memory_mib: None,
            revenue_per_period: Vec::with_capacity(t_total),
            mean_posted_price: 0.0,
            posted_price_std: 0.0,
            matched_distance: 0.0,
            rejected_events: 0,
            suppressed_duplicates: 0,
            latency: maps_telemetry::LatencyTelemetry::new(),
        };
        // Posted-price moments via Welford's algorithm (see
        // [`RunningMoments`]): the naive Σx/Σx² finish cancels
        // catastrophically on high-mean/low-spread price streams. The
        // sharded service's tick reducer pushes prices through the same
        // accumulator in the same order, keeping the two bit-identical.
        let mut price_moments = RunningMoments::new();

        if self.options.calibrate {
            // lint-allow(det-wallclock): calibration_secs is timing telemetry, excluded from deterministic_bits
            let start = Instant::now();
            let mut probe = GroundTruthProbe::new(&self.truth.demands, self.options.probe_seed);
            self.strategy.calibrate(&mut probe);
            outcome.calibration_secs = start.elapsed().as_secs_f64();
        }

        // Reused scratch buffers: everything the per-period loop needs
        // is allocated once here and recycled across the horizon.
        let mut task_inputs: Vec<TaskInput> = Vec::new();
        let mut observations: Vec<Observation> = Vec::new();
        let mut keep: Vec<bool> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut clearing = MatchScratch::new();

        for t in 0..t_total {
            let period = &self.truth.periods[t];
            engine.begin_period(t as u32, &period.workers);
            task_inputs.clear();
            task_inputs.extend(period.tasks.iter().map(|task| TaskInput {
                origin: task.origin,
                distance: task.distance,
                cell: task.cell,
            }));
            outcome.issued_tasks += task_inputs.len() as u64;

            let graph = engine.build_graph(&task_inputs, self.options.max_edges_per_task);
            // Event-time telemetry for the settled period: both
            // quantities (queued tasks, live workers at pricing time)
            // are already replay-contract-equal across every engine and
            // the sharded reducer, so recording them here and in the
            // service's tick keeps the histograms bit-identical too.
            outcome.latency.record_period(
                task_inputs.len() as u64,
                engine.worker_inputs().len() as u64,
            );
            let input = PeriodInput {
                grid: &self.truth.grid,
                tasks: &task_inputs,
                workers: engine.worker_inputs(),
                graph: &graph,
            };

            // lint-allow(det-wallclock): pricing_secs is timing telemetry, excluded from deterministic_bits
            let start = Instant::now();
            let schedule = self.strategy.price_period(&input);
            outcome.pricing_secs += start.elapsed().as_secs_f64();

            // Requesters decide and the market clears — the shared
            // per-period core (also the service's tick reducer).
            let settlement = settle_period(
                &period.tasks,
                &task_inputs,
                &schedule,
                &graph,
                &mut price_moments,
                &mut observations,
                &mut keep,
                &mut weights,
                &mut clearing,
            );
            outcome.accepted_tasks += settlement.accepted;
            outcome.clearing_secs += settlement.clearing_secs;
            outcome.total_revenue += settlement.revenue;
            outcome.revenue_per_period.push(settlement.revenue);

            // Worker lifecycle for matched pairs (task indices are the
            // original period indices — the masked kernel does not
            // renumber).
            for (l, dense) in clearing.matched_pairs() {
                outcome.matched_tasks += 1;
                let task = &period.tasks[l];
                outcome.matched_distance += task.distance;
                match self.truth.match_policy {
                    MatchPolicy::Consume => engine.consume(dense as usize),
                    MatchPolicy::Relocate { speed } => {
                        let travel = (task.distance / speed).ceil().max(1.0) as u32;
                        engine.dispatch(t as u32, dense as usize, task.destination, travel);
                    }
                }
            }

            self.strategy.observe(&observations);
        }

        outcome.mean_posted_price = price_moments.mean();
        outcome.posted_price_std = price_moments.population_std();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;
    use crate::truth::{GroundTask, GroundWorker, PeriodData};
    use maps_market::Demand;
    use maps_spatial::{GridSpec, Point, Rect};

    fn small_world(seed: u64) -> GroundTruth {
        SyntheticConfig {
            num_workers: 150,
            num_tasks: 600,
            periods: 25,
            grid_side: 4,
            ..SyntheticConfig::paper_default()
        }
        .build(seed)
    }

    #[test]
    fn all_strategies_run_and_conserve() {
        let world = small_world(3);
        for kind in StrategyKind::ALL {
            let outcome = Simulation::new(world.clone(), kind).run();
            assert!(outcome.is_consistent(), "{kind}: {outcome:?}");
            assert_eq!(outcome.issued_tasks, 600, "{kind}");
            assert!(outcome.total_revenue >= 0.0);
            assert_eq!(outcome.revenue_per_period.len(), 25);
            assert!(
                (outcome.total_revenue - outcome.revenue_per_period.iter().sum::<f64>()).abs()
                    < 1e-9
            );
            assert_eq!(outcome.strategy, kind.name());
        }
    }

    #[test]
    fn consume_policy_bounds_matches_by_worker_count() {
        let mut cfg = SyntheticConfig {
            num_workers: 150,
            num_tasks: 600,
            periods: 25,
            grid_side: 4,
            ..SyntheticConfig::paper_default()
        };
        cfg.match_policy = MatchPolicy::Consume;
        let outcome = Simulation::new(cfg.build(5), StrategyKind::BaseP).run();
        assert!(outcome.matched_tasks <= 150);
    }

    #[test]
    fn maps_beats_flat_base_price_on_default_world() {
        // The paper's headline: MAPS yields the highest revenue. On a
        // small but supply-constrained world MAPS must beat BaseP.
        let world = small_world(11);
        let maps = Simulation::new(world.clone(), StrategyKind::Maps).run();
        let base = Simulation::new(world, StrategyKind::BaseP).run();
        assert!(
            maps.total_revenue > base.total_revenue * 0.95,
            "MAPS {} vs BaseP {}",
            maps.total_revenue,
            base.total_revenue
        );
    }

    #[test]
    fn deterministic_given_same_world_and_seed() {
        let a = Simulation::new(small_world(7), StrategyKind::Maps).run();
        let b = Simulation::new(small_world(7), StrategyKind::Maps).run();
        assert_eq!(a.total_revenue, b.total_revenue);
        assert_eq!(a.matched_tasks, b.matched_tasks);
    }

    /// The tentpole oracle at the whole-simulation level: the
    /// event-queue + graph-cache path must reproduce the retained
    /// rescan-and-rebuild path bit for bit, on every strategy and both
    /// lifecycle policies (synthetic Consume and Beijing-like Relocate
    /// with finite worker durations).
    #[test]
    fn incremental_run_matches_scan_oracle() {
        let mut consume_cfg = SyntheticConfig {
            num_workers: 120,
            num_tasks: 500,
            periods: 20,
            grid_side: 4,
            ..SyntheticConfig::paper_default()
        };
        consume_cfg.match_policy = MatchPolicy::Consume;
        let worlds = [
            small_world(3),
            consume_cfg.build(5),
            crate::beijing::BeijingConfig::rush_hour(10)
                .with_scale(0.01)
                .build(2),
        ];
        for (wi, world) in worlds.iter().enumerate() {
            for kind in StrategyKind::ALL {
                let run = |incremental: bool| {
                    Simulation::new(world.clone(), kind)
                        .with_options(SimOptions {
                            incremental,
                            ..SimOptions::default()
                        })
                        .run()
                };
                let incremental = run(true);
                let scan = run(false);
                assert_eq!(
                    incremental.deterministic_bits(),
                    scan.deterministic_bits(),
                    "world {wi} strategy {kind}: incremental diverged from the scan oracle"
                );
            }
        }
    }

    #[test]
    fn no_calibration_option() {
        let world = small_world(9);
        let outcome = Simulation::new(world, StrategyKind::Maps)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        assert_eq!(outcome.calibration_secs, 0.0);
        assert!(outcome.is_consistent());
    }

    /// Hand-built two-period world exercising the Relocate policy.
    #[test]
    fn relocate_policy_reuses_workers() {
        let grid = GridSpec::square(Rect::square(10.0), 1);
        let demands = vec![Demand::paper_normal(3.5, 0.5)]; // high valuations
        let mk_task = |x: f64| {
            let origin = Point::new(x, 1.0);
            let destination = Point::new(x, 2.0);
            GroundTask {
                origin,
                destination,
                distance: 1.0,
                valuation: 4.9, // accepts any ladder price
                cell: grid.cell_of(origin),
            }
        };
        let worker = GroundWorker {
            location: Point::new(1.0, 1.0),
            radius: 9.0,
            duration: u32::MAX,
        };
        // Period 0: one task; at speed 0.5 the unit trip takes
        // ⌈1.0/0.5⌉ = 2 periods, so the worker is busy through period 1
        // and free again in period 2.
        let truth = GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![mk_task(1.0)],
                    workers: vec![worker],
                },
                PeriodData {
                    tasks: vec![mk_task(2.0)],
                    workers: vec![],
                },
                PeriodData {
                    tasks: vec![mk_task(3.0)],
                    workers: vec![],
                },
            ],
            match_policy: MatchPolicy::Relocate { speed: 0.5 },
        };
        let outcome = Simulation::new(truth, StrategyKind::BaseP)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        // Period 0 matched; period 1 the worker is busy; period 2 matched.
        assert_eq!(outcome.matched_tasks, 2);
        assert_eq!(outcome.accepted_tasks, 3);
    }

    #[test]
    fn consume_policy_single_use() {
        let grid = GridSpec::square(Rect::square(10.0), 1);
        let demands = vec![Demand::paper_normal(3.5, 0.5)];
        let origin = Point::new(1.0, 1.0);
        let task = GroundTask {
            origin,
            destination: Point::new(1.0, 2.0),
            distance: 1.0,
            valuation: 4.9,
            cell: grid.cell_of(origin),
        };
        let truth = GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![task],
                    workers: vec![GroundWorker {
                        location: Point::new(1.0, 1.0),
                        radius: 5.0,
                        duration: u32::MAX,
                    }],
                },
                PeriodData {
                    tasks: vec![task],
                    workers: vec![],
                },
            ],
            match_policy: MatchPolicy::Consume,
        };
        let outcome = Simulation::new(truth, StrategyKind::BaseP)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        assert_eq!(
            outcome.matched_tasks, 1,
            "consumed worker cannot serve twice"
        );
    }

    #[test]
    fn worker_duration_expires() {
        let grid = GridSpec::square(Rect::square(10.0), 1);
        let demands = vec![Demand::paper_normal(3.5, 0.5)];
        let origin = Point::new(1.0, 1.0);
        let task = GroundTask {
            origin,
            destination: Point::new(1.0, 2.0),
            distance: 1.0,
            valuation: 4.9,
            cell: grid.cell_of(origin),
        };
        let truth = GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![],
                    workers: vec![GroundWorker {
                        location: Point::new(1.0, 1.0),
                        radius: 5.0,
                        duration: 2, // periods 0 and 1 only
                    }],
                },
                PeriodData::default(),
                PeriodData {
                    tasks: vec![task],
                    workers: vec![],
                },
            ],
            match_policy: MatchPolicy::Consume,
        };
        let outcome = Simulation::new(truth, StrategyKind::BaseP)
            .with_options(SimOptions {
                calibrate: false,
                ..SimOptions::default()
            })
            .run();
        assert_eq!(outcome.matched_tasks, 0, "expired worker must not serve");
    }
}
