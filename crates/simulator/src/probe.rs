//! Ground-truth demand probe for the calibration phase.
//!
//! Algorithm 1 "uses the price p for h(p) times and observes the
//! acceptance ratio" against requesters *who recently issued tasks* —
//! i.e. historical requesters drawn from the same hidden demand. This
//! probe materializes exactly that: fresh valuations sampled from the
//! grid's true distribution, answered as accept/reject counts.

use maps_core::DemandProbe;
use maps_market::{Demand, DemandDistribution};
use maps_spatial::CellId;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// [`DemandProbe`] backed by the hidden per-grid distributions.
#[derive(Debug, Clone)]
pub struct GroundTruthProbe<'a> {
    demands: &'a [Demand],
    rng: ChaCha12Rng,
    issued: u64,
}

impl<'a> GroundTruthProbe<'a> {
    /// Creates a probe over the world's demand distributions.
    pub fn new(demands: &'a [Demand], seed: u64) -> Self {
        Self {
            demands,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            issued: 0,
        }
    }

    /// Total number of probe requesters contacted so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl DemandProbe for GroundTruthProbe<'_> {
    fn probe(&mut self, cell: CellId, price: f64, n: u64) -> u64 {
        self.issued += n;
        let demand = &self.demands[cell.index()];
        let mut accepted = 0;
        for _ in 0..n {
            // Accept iff v > p, matching S(p) = Pr[v > p].
            if demand.sample(&mut self.rng) > price {
                accepted += 1;
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_matches_true_survival() {
        let demands = vec![
            Demand::paper_normal(2.0, 1.0),
            Demand::paper_normal(3.0, 0.5),
        ];
        let mut probe = GroundTruthProbe::new(&demands, 7);
        for (cell, demand) in demands.iter().enumerate() {
            for price in [1.5, 2.25, 3.0] {
                let n = 20_000;
                let acc = probe.probe(cell.into(), price, n);
                let emp = acc as f64 / n as f64;
                let want = demand.survival(price);
                assert!(
                    (emp - want).abs() < 0.02,
                    "cell {cell} price {price}: {emp} vs {want}"
                );
            }
        }
        assert_eq!(probe.issued(), 2 * 3 * 20_000);
    }

    #[test]
    fn extreme_prices() {
        let demands = vec![Demand::paper_normal(2.0, 1.0)];
        let mut probe = GroundTruthProbe::new(&demands, 1);
        // At the support's bottom everyone accepts (v > 1 a.s. for a
        // continuous distribution); at the top nobody does.
        assert_eq!(probe.probe(0usize.into(), 0.5, 100), 100);
        assert_eq!(probe.probe(0usize.into(), 5.0, 100), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let demands = vec![Demand::paper_normal(2.0, 1.0)];
        let mut a = GroundTruthProbe::new(&demands, 42);
        let mut b = GroundTruthProbe::new(&demands, 42);
        assert_eq!(
            a.probe(0usize.into(), 2.0, 500),
            b.probe(0usize.into(), 2.0, 500)
        );
    }
}
