//! Synthetic workload generator — Table 3 of the paper.
//!
//! "All locations are generated within a square of 100 × 100 … The start
//! times of tasks and workers are drawn from a normal distribution
//! conditioned on the entire time span (the temporal distribution) …
//! the origins of tasks and workers are generated from a two-dimensional
//! Gaussian distribution (the spatial distribution) … The destinations of
//! tasks are drawn from a uniform distribution within the 100 × 100
//! square. … We simulate the demand distribution via a normal
//! distribution with its mean varying from 1 to 3 … We restrict all the
//! v_r to [1, 5]."
//!
//! Defaults are Table 3's bold entries: `|W| = 5000`, `|R| = 20000`,
//! temporal μ = 0.5, spatial mean = 0.5, demand μ = 2.0, demand σ = 1.0,
//! `T = 400`, `G = 10×10`, `a_w = 10`.
//!
//! Two under-specified details are resolved as follows (see DESIGN.md):
//! the paper varies only the means, so both std-deviations are fixed
//! (temporal σ = 0.2·T, spatial σ = 15); and "a normal distribution with
//! its mean varying from 1 to 3 … w.r.t. the mean of g" is realized as a
//! smooth G-independent offset field over the region (8×8 value-noise
//! lattice, offsets in [−1, 1]) added to the global μ — at the default
//! μ = 2 the local means span [1, 3]. The spatial demand heterogeneity
//! this creates is what per-grid dynamic pricing exploits, and its
//! independence from the pricing grid is what makes the G-sweep of the
//! paper's Fig. 7(d) meaningful.

use crate::truth::{GroundTask, GroundTruth, GroundWorker, MatchPolicy, PeriodData};
use maps_market::{Demand, DemandDistribution};
use maps_spatial::{DistanceMetric, GridSpec, Point, Rect};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A mid-horizon market regime change: from period `⌈at_fraction·T⌉` on,
/// new requesters draw valuations with the global mean shifted by
/// `delta_mu`. The pre-shift per-grid aggregates remain what the
/// calibration phase saw, so learning strategies must adapt online —
/// this is the scenario the Sec.-4.2.2 change detector exists for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandShift {
    /// When the shift happens, as a fraction of `T` in `(0, 1]`.
    pub at_fraction: f64,
    /// Additive change to the demand mean (or 0.3× to the exponential
    /// rate), applied on top of the spatial offset field.
    pub delta_mu: f64,
}

/// Which family the per-grid demand distributions come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandKind {
    /// Truncated Normal on `[1,5]` (Table 3 default).
    Normal,
    /// Truncated Exponential on `[1,5]` with rate `alpha` (Appendix D /
    /// Fig. 10; the grid jitter is applied to the rate).
    Exponential {
        /// Rate parameter `α`.
        alpha: f64,
    },
}

/// Configuration mirroring Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Total number of workers `|W|`.
    pub num_workers: usize,
    /// Total number of tasks `|R|`.
    pub num_tasks: usize,
    /// Mean of the task temporal distribution as a fraction of `T`.
    pub temporal_mu: f64,
    /// Std-dev of the temporal distribution as a fraction of `T`.
    pub temporal_sigma: f64,
    /// Mean of the task spatial distribution as a fraction of the region
    /// side (the x-axis of Fig. 6 column 4: 0.1 → (10,10)).
    pub task_spatial_mean: f64,
    /// Mean of the worker spatial distribution (fixed at 0.5 in the
    /// paper's sweeps).
    pub worker_spatial_mean: f64,
    /// Std-dev of both spatial Gaussians, in region units.
    pub spatial_sigma: f64,
    /// Mean μ of the demand (valuation) distribution.
    pub demand_mu: f64,
    /// Std-dev σ of the demand distribution.
    pub demand_sigma: f64,
    /// Demand family.
    pub demand_kind: DemandKind,
    /// Number of time periods `T`.
    pub periods: usize,
    /// Grid side (G = side²).
    pub grid_side: u32,
    /// Worker range radius `a_w`.
    pub worker_radius: f64,
    /// Region side length (100 in the paper).
    pub region_side: f64,
    /// Worker lifecycle policy.
    pub match_policy: MatchPolicy,
    /// Worker availability duration in periods (`u32::MAX` = unbounded).
    pub worker_duration: u32,
    /// Travel-distance metric for `d_r` (the paper allows "Euclidean or
    /// road-network distance"; Manhattan is the road-grid surrogate).
    pub metric: DistanceMetric,
    /// Optional mid-horizon demand regime change (non-stationary
    /// extension; `None` = the paper's stationary experiments).
    pub demand_shift: Option<DemandShift>,
}

impl SyntheticConfig {
    /// Table 3's bold defaults.
    pub fn paper_default() -> Self {
        Self {
            num_workers: 5_000,
            num_tasks: 20_000,
            temporal_mu: 0.5,
            temporal_sigma: 0.2,
            task_spatial_mean: 0.5,
            worker_spatial_mean: 0.5,
            spatial_sigma: 15.0,
            demand_mu: 2.0,
            demand_sigma: 1.0,
            demand_kind: DemandKind::Normal,
            periods: 400,
            grid_side: 10,
            worker_radius: 10.0,
            region_side: 100.0,
            // Workers are full-time (Sec. 2.1: "most workers … perform
            // multiple tasks for a long time"): after a trip of d units at
            // 2 units/period they become available again at the
            // destination (the paper leaves worker kinematics open; see
            // DESIGN.md §4.8).
            match_policy: MatchPolicy::Relocate { speed: 2.0 },
            worker_duration: u32::MAX,
            metric: DistanceMetric::Euclidean,
            demand_shift: None,
        }
    }

    /// Builder-style override: `|W|`.
    pub fn with_num_workers(mut self, w: usize) -> Self {
        self.num_workers = w;
        self
    }

    /// Builder-style override: `|R|`.
    pub fn with_num_tasks(mut self, r: usize) -> Self {
        self.num_tasks = r;
        self
    }

    /// Builder-style override: `T`.
    pub fn with_periods(mut self, t: usize) -> Self {
        self.periods = t;
        self
    }

    /// Builder-style override: grid side (`G = side²`).
    pub fn with_grid_side(mut self, side: u32) -> Self {
        self.grid_side = side;
        self
    }

    /// Builder-style override: worker radius `a_w`.
    pub fn with_worker_radius(mut self, a: f64) -> Self {
        self.worker_radius = a;
        self
    }

    /// Builds the ground-truth world, deterministically from `seed`.
    pub fn build(&self, seed: u64) -> GroundTruth {
        assert!(self.periods > 0, "need at least one period");
        assert!(self.grid_side > 0, "need at least one grid cell");
        assert!(
            (0.0..=1.0).contains(&self.temporal_mu),
            "temporal mean is a fraction of T"
        );
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let region = Rect::square(self.region_side);
        let grid = GridSpec::square(region, self.grid_side);

        // Demand heterogeneity: the paper simulates "a normal distribution
        // with its mean varying from 1 to 3" and draws each valuation
        // "w.r.t. the mean of g". We realize this as a *continuous* offset
        // field over the region (a seeded 8×8 value-noise lattice with
        // offsets in [−1, 1], bilinearly interpolated): at the default
        // global μ = 2 the local means span [1, 3]. Crucially the field is
        // independent of the pricing grid G, so coarse grids pay a real
        // aggregation penalty and finer grids price-discriminate better —
        // the mechanism behind the paper's Fig. 7(d) G-sweep.
        let field = OffsetField::new(&mut rng);
        let make_demand = |offset: f64| match self.demand_kind {
            DemandKind::Normal => {
                let mu = (self.demand_mu + offset).clamp(1.0, 4.0);
                Demand::paper_normal(mu, self.demand_sigma)
            }
            DemandKind::Exponential { alpha } => {
                let a = (alpha + 0.3 * offset).max(0.05);
                Demand::paper_exponential(a)
            }
        };
        // The per-cell distributions are the cell-centre aggregate view —
        // what the calibration probe (historical requesters of the grid)
        // responds from.
        let demands: Vec<Demand> = grid
            .cells()
            .map(|c| make_demand(field.offset_at(grid.cell_center(c), region)))
            .collect();

        let mut periods = vec![PeriodData::default(); self.periods];
        let t_max = self.periods as f64;

        // Tasks.
        let shift_at = self
            .demand_shift
            .map(|s| (s.at_fraction * t_max).ceil() as usize);
        for _ in 0..self.num_tasks {
            let t = sample_period(
                &mut rng,
                self.temporal_mu * t_max,
                self.temporal_sigma * t_max,
                self.periods,
            );
            let origin = sample_gaussian_point(
                &mut rng,
                self.task_spatial_mean * self.region_side,
                self.spatial_sigma,
                region,
            );
            let destination = Point::new(
                rng.gen_range(0.0..self.region_side),
                rng.gen_range(0.0..self.region_side),
            );
            let mut distance = origin.distance(destination, self.metric);
            if distance <= f64::EPSILON {
                distance = 0.1; // degenerate same-point trip
            }
            let cell = grid.cell_of(origin);
            // Valuations follow the continuous field at the task's own
            // origin (not the cell aggregate): requesters are individuals.
            let mut offset = field.offset_at(origin, region);
            if let (Some(shift), Some(at)) = (self.demand_shift, shift_at) {
                if t >= at {
                    offset += shift.delta_mu;
                }
            }
            let valuation = make_demand(offset).sample(&mut rng);
            periods[t].tasks.push(GroundTask {
                origin,
                destination,
                distance,
                valuation,
                cell,
            });
        }

        // Workers: temporal mean fixed at T/2 ("The mean for the workers
        // is fixed at T/2").
        for _ in 0..self.num_workers {
            let t = sample_period(
                &mut rng,
                0.5 * t_max,
                self.temporal_sigma * t_max,
                self.periods,
            );
            let location = sample_gaussian_point(
                &mut rng,
                self.worker_spatial_mean * self.region_side,
                self.spatial_sigma,
                region,
            );
            periods[t].workers.push(GroundWorker {
                location,
                radius: self.worker_radius,
                duration: self.worker_duration,
            });
        }

        let truth = GroundTruth {
            grid,
            demands,
            periods,
            match_policy: self.match_policy,
        };
        // Generator self-check (debug builds): everything downstream —
        // `Grid::cell_of`, the spatial indexes, the pricing ladders —
        // assumes finite coordinates, radii, distances and valuations. A
        // builder bug producing a NaN here would otherwise surface as
        // silent cell-0 misrouting far from its cause.
        #[cfg(debug_assertions)]
        if let Err(e) = truth.validate() {
            panic!("synthetic builder produced an invalid world: {e}");
        }
        truth
    }
}

/// Samples a period index from `N(mu, sigma)` truncated to `[0, t)`.
fn sample_period(rng: &mut impl Rng, mu: f64, sigma: f64, t: usize) -> usize {
    let x = mu + sigma * gaussian(rng);
    (x.floor() as i64).clamp(0, t as i64 - 1) as usize
}

/// Samples a point from an isotropic Gaussian, clamped to the region.
fn sample_gaussian_point(rng: &mut impl Rng, mean: f64, sigma: f64, region: Rect) -> Point {
    Point::new(mean + sigma * gaussian(rng), mean + sigma * gaussian(rng)).clamped(region)
}

/// Standard normal via Box–Muller (no `rand_distr` in the offline set).
/// A smooth offset field over the region: an `(N+1)²` lattice of
/// uniform offsets in `[−1, 1]`, bilinearly interpolated. The field is a
/// property of the *world* (seeded once), not of the pricing grid.
#[derive(Debug, Clone)]
struct OffsetField {
    nodes: Vec<f64>,
}

impl OffsetField {
    /// Lattice resolution (cells per side); 8 gives a correlation length
    /// of 1/8th of the region (12.5 units on the paper's 100×100 square).
    const N: usize = 8;

    /// Node amplitude. Bilinear interpolation averages up to four nodes,
    /// shrinking the interior spread to ~60 % of the node amplitude, so
    /// nodes are drawn at ±1.4 to give typical local offsets of ~±0.9 —
    /// matching the paper's "means varying from 1 to 3" at μ = 2.
    const AMPLITUDE: f64 = 1.4;

    fn new(rng: &mut impl Rng) -> Self {
        let side = Self::N + 1;
        Self {
            nodes: (0..side * side)
                .map(|_| rng.gen_range(-Self::AMPLITUDE..=Self::AMPLITUDE))
                .collect(),
        }
    }

    fn offset_at(&self, p: Point, region: Rect) -> f64 {
        let side = Self::N + 1;
        let fx = ((p.x - region.min.x) / region.width() * Self::N as f64)
            .clamp(0.0, Self::N as f64 - 1e-9);
        let fy = ((p.y - region.min.y) / region.height() * Self::N as f64)
            .clamp(0.0, Self::N as f64 - 1e-9);
        let (ix, iy) = (fx as usize, fy as usize);
        let (tx, ty) = (fx - ix as f64, fy - iy as f64);
        let at = |x: usize, y: usize| self.nodes[y * side + x];
        let bottom = at(ix, iy) * (1.0 - tx) + at(ix + 1, iy) * tx;
        let top = at(ix, iy + 1) * (1.0 - tx) + at(ix + 1, iy + 1) * tx;
        bottom * (1.0 - ty) + top * ty
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            num_workers: 300,
            num_tasks: 1200,
            periods: 40,
            ..SyntheticConfig::paper_default()
        }
    }

    #[test]
    fn counts_and_validity() {
        let truth = small().build(7);
        assert_eq!(truth.num_periods(), 40);
        assert_eq!(truth.total_tasks(), 1200);
        assert_eq!(truth.total_workers(), 300);
        truth
            .validate()
            .expect("generator must produce a valid world");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().build(42);
        let b = small().build(42);
        assert_eq!(a.total_tasks(), b.total_tasks());
        for (pa, pb) in a.periods.iter().zip(&b.periods) {
            assert_eq!(pa.tasks.len(), pb.tasks.len());
            for (ta, tb) in pa.tasks.iter().zip(&pb.tasks) {
                assert_eq!(ta.origin, tb.origin);
                assert_eq!(ta.valuation, tb.valuation);
            }
        }
        let c = small().build(43);
        // Different seed ⇒ (almost surely) different first task.
        let first_a = a.periods.iter().flat_map(|p| &p.tasks).next().unwrap();
        let first_c = c.periods.iter().flat_map(|p| &p.tasks).next().unwrap();
        assert_ne!(first_a.origin, first_c.origin);
    }

    #[test]
    fn valuations_respect_window() {
        let truth = small().build(1);
        for p in &truth.periods {
            for t in &p.tasks {
                assert!((1.0..=5.0).contains(&t.valuation), "v={}", t.valuation);
            }
        }
    }

    #[test]
    fn temporal_mean_shifts_arrivals() {
        let early = SyntheticConfig {
            temporal_mu: 0.1,
            ..small()
        }
        .build(3);
        let late = SyntheticConfig {
            temporal_mu: 0.9,
            ..small()
        }
        .build(3);
        let mean_period = |t: &GroundTruth| -> f64 {
            let mut sum = 0.0;
            let mut n = 0usize;
            for (i, p) in t.periods.iter().enumerate() {
                sum += (i * p.tasks.len()) as f64;
                n += p.tasks.len();
            }
            sum / n as f64
        };
        assert!(mean_period(&early) + 10.0 < mean_period(&late));
    }

    #[test]
    fn spatial_mean_shifts_origins() {
        let low = SyntheticConfig {
            task_spatial_mean: 0.1,
            ..small()
        }
        .build(3);
        let mean_x = |t: &GroundTruth| -> f64 {
            let all: Vec<f64> = t
                .periods
                .iter()
                .flat_map(|p| p.tasks.iter().map(|t| t.origin.x))
                .collect();
            all.iter().sum::<f64>() / all.len() as f64
        };
        let high = SyntheticConfig {
            task_spatial_mean: 0.9,
            ..small()
        }
        .build(3);
        assert!(mean_x(&low) < 35.0);
        assert!(mean_x(&high) > 65.0);
    }

    #[test]
    fn demand_mu_shifts_valuations() {
        let cheap = SyntheticConfig {
            demand_mu: 1.0,
            ..small()
        }
        .build(5);
        let pricey = SyntheticConfig {
            demand_mu: 3.0,
            ..small()
        }
        .build(5);
        let mean_v = |t: &GroundTruth| -> f64 {
            let all: Vec<f64> = t
                .periods
                .iter()
                .flat_map(|p| p.tasks.iter().map(|t| t.valuation))
                .collect();
            all.iter().sum::<f64>() / all.len() as f64
        };
        assert!(mean_v(&cheap) + 0.5 < mean_v(&pricey));
    }

    #[test]
    fn exponential_demand_kind() {
        let truth = SyntheticConfig {
            demand_kind: DemandKind::Exponential { alpha: 1.0 },
            ..small()
        }
        .build(9);
        truth.validate().unwrap();
        // Exponential valuations skew low: mean well below the midpoint 3.
        let mean_v = truth
            .periods
            .iter()
            .flat_map(|p| p.tasks.iter().map(|t| t.valuation))
            .sum::<f64>()
            / truth.total_tasks() as f64;
        assert!(mean_v < 2.5, "mean valuation {mean_v}");
    }

    #[test]
    fn origins_inside_region() {
        let truth = small().build(11);
        let region = truth.grid.region();
        for p in &truth.periods {
            for t in &p.tasks {
                assert!(region.contains(t.origin));
                assert!(region.contains(t.destination));
            }
            for w in &p.workers {
                assert!(region.contains(w.location));
            }
        }
    }

    #[test]
    fn demand_shift_changes_late_valuations() {
        let base = small();
        let shifted = SyntheticConfig {
            demand_shift: Some(DemandShift {
                at_fraction: 0.5,
                delta_mu: -1.0,
            }),
            ..small()
        };
        let truth_base = base.build(21);
        let truth_shift = shifted.build(21);
        let mean_v = |t: &GroundTruth, range: std::ops::Range<usize>| -> f64 {
            let vals: Vec<f64> = t.periods[range]
                .iter()
                .flat_map(|p| p.tasks.iter().map(|t| t.valuation))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // Pre-shift halves: the shift only perturbs post-shift draws, so
        // the two streams are *the same* draws — pin exact bit equality,
        // not a 0.05 tolerance (measured diff under the vendored
        // ChaCha stream: exactly 0.0).
        let early_base = mean_v(&truth_base, 0..20);
        let early_shift = mean_v(&truth_shift, 0..20);
        assert_eq!(
            early_base.to_bits(),
            early_shift.to_bits(),
            "pre-shift halves drew different valuations"
        );
        // Post-shift valuations drop by roughly the delta. The full
        // |delta_mu| = 1.0 is compressed by truncation to [1, 5];
        // measured drop under the pinned seed/stream: 0.39679. The
        // generator is deterministic, so pin a tight two-sided band
        // around that instead of the old one-sided 0.35 margin — a
        // generator change that moves the distribution (not just the
        // mean) now fails loudly instead of sliding under a loose bound.
        let late_base = mean_v(&truth_base, 20..40);
        let late_shift = mean_v(&truth_shift, 20..40);
        let drop = late_base - late_shift;
        assert!(
            (0.39..0.41).contains(&drop),
            "late-mean drop {drop} outside the pinned band (base {late_base}, shifted {late_shift})"
        );
    }

    #[test]
    fn manhattan_metric_increases_distances() {
        let euclid = small().build(31);
        let manhattan = SyntheticConfig {
            metric: DistanceMetric::Manhattan,
            ..small()
        }
        .build(31);
        let total = |t: &GroundTruth| -> f64 {
            t.periods
                .iter()
                .flat_map(|p| p.tasks.iter().map(|t| t.distance))
                .sum()
        };
        // L1 >= L2 pointwise, strictly for non-axis-aligned trips.
        assert!(total(&manhattan) > total(&euclid) * 1.05);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
