//! Ground-truth world model.
//!
//! Everything the *simulator* knows but the *platform* does not: private
//! valuations `v_r` (Definition 2 — "private valuations are unknown to
//! the platform"), the per-grid demand distributions behind them, and
//! worker availability windows.

use maps_market::Demand;
use maps_spatial::{CellId, GridSpec, Point};

/// A task with its hidden ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTask {
    /// Origin `ori_r`.
    pub origin: Point,
    /// Destination `des_r`.
    pub destination: Point,
    /// Travel distance `d_r` (already computed under the scenario's
    /// distance metric).
    pub distance: f64,
    /// The requester's private valuation `v_r` (max unit price accepted).
    pub valuation: f64,
    /// Grid cell of the origin.
    pub cell: CellId,
}

/// A worker with its availability window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundWorker {
    /// Initial location `l_w`.
    pub location: Point,
    /// Range-constraint radius `a_w`.
    pub radius: f64,
    /// Number of periods the worker stays on the platform after arrival
    /// (the real-data experiments vary this as `δ_w`; synthetic workers
    /// use `u32::MAX`, i.e. until matched or the horizon ends).
    pub duration: u32,
}

/// Arrivals for one time period.
#[derive(Debug, Clone, Default)]
pub struct PeriodData {
    /// Tasks issued in this period.
    pub tasks: Vec<GroundTask>,
    /// Workers becoming available in this period.
    pub workers: Vec<GroundWorker>,
}

/// What happens to a worker after completing a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchPolicy {
    /// The worker leaves the platform (synthetic default; reproduces the
    /// revenue saturation the paper reports as `|R|` grows with fixed
    /// `|W|`).
    Consume,
    /// The worker is busy for `⌈d_r / speed⌉` periods and reappears at
    /// the task's destination (Beijing-like scenarios; the paper notes
    /// workers "tend to perform multiple tasks for a long time").
    Relocate {
        /// Travel speed in distance units per period.
        speed: f64,
    },
}

/// A full simulated world: grid, hidden demand, arrivals, lifecycle.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The grid partitioning (Definition 1).
    pub grid: GridSpec,
    /// Hidden per-grid valuation distributions.
    pub demands: Vec<Demand>,
    /// Arrivals, indexed by period `0..T`.
    pub periods: Vec<PeriodData>,
    /// Worker lifecycle policy.
    pub match_policy: MatchPolicy,
}

impl GroundTruth {
    /// Number of time periods `T`.
    pub fn num_periods(&self) -> usize {
        self.periods.len()
    }

    /// Total number of issued tasks `|R|`.
    pub fn total_tasks(&self) -> usize {
        self.periods.iter().map(|p| p.tasks.len()).sum()
    }

    /// Total number of arriving workers `|W|`.
    pub fn total_workers(&self) -> usize {
        self.periods.iter().map(|p| p.workers.len()).sum()
    }

    /// Validates internal consistency (used by generator tests):
    /// cells match origins, distances are positive, valuations lie in
    /// the demand support.
    pub fn validate(&self) -> Result<(), String> {
        if self.demands.len() != self.grid.num_cells() {
            return Err(format!(
                "expected {} demand distributions, got {}",
                self.grid.num_cells(),
                self.demands.len()
            ));
        }
        let finite = |p: Point| p.x.is_finite() && p.y.is_finite();
        for (t, period) in self.periods.iter().enumerate() {
            for task in &period.tasks {
                if !finite(task.origin) || !finite(task.destination) {
                    return Err(format!(
                        "period {t}: non-finite task endpoint {:?} -> {:?}",
                        task.origin, task.destination
                    ));
                }
                if self.grid.cell_of(task.origin) != task.cell {
                    return Err(format!("period {t}: task cell mismatch"));
                }
                if !(task.distance.is_finite() && task.distance > 0.0) {
                    return Err(format!("period {t}: bad distance {}", task.distance));
                }
                if !task.valuation.is_finite() {
                    return Err(format!("period {t}: bad valuation {}", task.valuation));
                }
            }
            for w in &period.workers {
                if !finite(w.location) {
                    return Err(format!(
                        "period {t}: non-finite worker location {:?}",
                        w.location
                    ));
                }
                if !(w.radius.is_finite() && w.radius >= 0.0) {
                    return Err(format!("period {t}: bad radius {}", w.radius));
                }
                if w.duration == 0 {
                    return Err(format!("period {t}: worker with zero duration"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::Rect;

    fn tiny_truth() -> GroundTruth {
        let grid = GridSpec::square(Rect::square(10.0), 2);
        let demands = vec![Demand::paper_normal(2.0, 1.0); 4];
        let origin = Point::new(1.0, 1.0);
        let task = GroundTask {
            origin,
            destination: Point::new(9.0, 9.0),
            distance: origin.euclidean(Point::new(9.0, 9.0)),
            valuation: 2.5,
            cell: grid.cell_of(origin),
        };
        let worker = GroundWorker {
            location: Point::new(2.0, 2.0),
            radius: 5.0,
            duration: u32::MAX,
        };
        GroundTruth {
            grid,
            demands,
            periods: vec![
                PeriodData {
                    tasks: vec![task],
                    workers: vec![worker],
                },
                PeriodData::default(),
            ],
            match_policy: MatchPolicy::Consume,
        }
    }

    #[test]
    fn counters() {
        let t = tiny_truth();
        assert_eq!(t.num_periods(), 2);
        assert_eq!(t.total_tasks(), 1);
        assert_eq!(t.total_workers(), 1);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_catches_cell_mismatch() {
        let mut t = tiny_truth();
        t.periods[0].tasks[0].cell = CellId(3);
        assert!(t.validate().unwrap_err().contains("cell mismatch"));
    }

    #[test]
    fn validate_catches_bad_distance() {
        let mut t = tiny_truth();
        t.periods[0].tasks[0].distance = 0.0;
        assert!(t.validate().unwrap_err().contains("bad distance"));
    }

    /// A NaN-located worker or task endpoint would be silently filed
    /// under a boundary cell by `Grid::cell_of` — the generator-level
    /// guard against the corruption the service also rejects at
    /// admission.
    #[test]
    fn validate_catches_non_finite_coordinates() {
        let mut t = tiny_truth();
        t.periods[0].workers[0].location = Point::new(f64::NAN, 2.0);
        assert!(t.validate().unwrap_err().contains("worker location"));

        let mut t = tiny_truth();
        t.periods[0].tasks[0].destination = Point::new(1.0, f64::INFINITY);
        assert!(t.validate().unwrap_err().contains("task endpoint"));

        let mut t = tiny_truth();
        t.periods[0].workers[0].radius = f64::NAN;
        assert!(t.validate().unwrap_err().contains("bad radius"));
    }

    #[test]
    fn validate_catches_demand_count() {
        let mut t = tiny_truth();
        t.demands.pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_duration() {
        let mut t = tiny_truth();
        t.periods[0].workers[0].duration = 0;
        assert!(t.validate().unwrap_err().contains("zero duration"));
    }
}
