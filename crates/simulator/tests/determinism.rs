//! End-to-end determinism: a whole simulation (calibration probing,
//! per-period MAPS pricing with its rayon table fan-out, acceptance
//! sampling, market clearing) must produce bit-identical outcomes at
//! any thread count. This is the integration-level counterpart of the
//! kernel-level checks in `maps-core`.

use maps_core::StrategyKind;
use maps_simulator::{Simulation, SyntheticConfig};

/// Canonical bit pattern of an outcome, excluding the wall-clock
/// columns (legitimately thread- and load-dependent).
fn outcome_canon(strategy: StrategyKind, seed: u64) -> Vec<u64> {
    let world = SyntheticConfig::paper_default()
        .with_num_workers(40)
        .with_num_tasks(150)
        .with_periods(6)
        .with_grid_side(4)
        .build(seed);
    Simulation::new(world, strategy).run().deterministic_bits()
}

#[test]
fn maps_simulation_bitwise_deterministic_across_threads() {
    maps_testkit::assert_deterministic(|| outcome_canon(StrategyKind::Maps, 11));
}

#[test]
fn all_strategies_deterministic_at_mixed_thread_counts() {
    // One seed per strategy keeps the sweep quick; MAPS gets the full
    // default 1/2/3/8 sweep above.
    for (i, kind) in StrategyKind::ALL.into_iter().enumerate() {
        maps_testkit::assert_deterministic_across(&[1, 3], || outcome_canon(kind, 20 + i as u64));
    }
}
