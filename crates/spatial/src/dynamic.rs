//! Incremental bucket index for churn-driven workloads.
//!
//! [`crate::BucketIndex`] is rebuilt from scratch every time period, which
//! makes per-period cost proportional to the standing point set. In the
//! paper's 500k-worker scalability setting the set barely changes between
//! periods (a few percent of workers arrive, expire or relocate), so the
//! rebuild dominates. [`DynamicBucketIndex`] keeps the same bucketed
//! layout mutable: `insert` / `remove` / `relocate` cost one binary
//! search plus a slot shift in a single bucket, turning per-period index
//! maintenance into `O(churn · log bucket)`.
//!
//! ## Stable iteration order
//!
//! Each bucket keeps its slots **sorted by payload**. A fresh
//! [`crate::BucketIndex::build_with_grid`] over the same live set listed
//! in ascending payload order buckets points with a stable counting sort,
//! so its per-cell order is also ascending payload — both stores answer
//! disc queries through the same shared core in the same order, making
//! their results bit-identical. `k_nearest_within` additionally orders by
//! the total `(distance, payload)` key, so capped queries agree even
//! between *differently sized* grids (the dynamic grid is fixed at
//! creation while a fresh build sizes its grid by `√n`).

use crate::geom::{Point, Rect};
use crate::grid::GridSpec;
use crate::index::{for_each_within_disc_impl, k_nearest_within_impl, BucketStore};

/// A mutable bucket index over a changing set of points.
///
/// Payloads must be unique while live (they identify the point for
/// `remove` / `relocate`); the index panics on a duplicate insert into
/// the same bucket, the cheapest detectable violation.
#[derive(Debug, Clone)]
pub struct DynamicBucketIndex<T> {
    grid: GridSpec,
    /// `buckets[c]` holds the live points of cell `c`, sorted by payload.
    buckets: Vec<Vec<(Point, T)>>,
    len: usize,
    /// Number of live points outside the grid region (disables the
    /// ring-search early termination while non-zero, exactly like the
    /// static index's `any_outside` flag).
    outside: usize,
}

impl<T: Copy + Ord> DynamicBucketIndex<T> {
    /// An empty index bucketed by `grid`. The grid is fixed for the
    /// index's lifetime; pick a resolution for the *expected* population
    /// (see [`DynamicBucketIndex::with_expected_len`]).
    pub fn new(grid: GridSpec) -> Self {
        let cells = grid.num_cells();
        Self {
            grid,
            buckets: vec![Vec::new(); cells],
            len: 0,
            outside: 0,
        }
    }

    /// An empty index over `region` with the bucket resolution the static
    /// index would pick for `expected_len` points (`√n × √n`, clamped to
    /// ≤ 256 per side).
    pub fn with_expected_len(region: Rect, expected_len: usize) -> Self {
        let n = expected_len.max(1);
        let side = ((n as f64).sqrt().ceil() as u32).clamp(1, 256);
        Self::new(GridSpec::new(region, side, side))
    }

    /// The bucketing grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point.
    ///
    /// # Panics
    /// Panics if `payload` is already live in the same bucket.
    pub fn insert(&mut self, p: Point, payload: T) {
        let bucket = &mut self.buckets[self.grid.cell_of(p).index()];
        match bucket.binary_search_by(|&(_, t)| t.cmp(&payload)) {
            Ok(_) => panic!("duplicate payload inserted into dynamic index"),
            Err(pos) => bucket.insert(pos, (p, payload)),
        }
        self.len += 1;
        if !self.grid.region().contains(p) {
            self.outside += 1;
        }
    }

    /// Removes the point previously inserted at `p` with `payload`.
    /// Returns whether it was present (callers enforcing a stricter
    /// contract can treat `false` as a bug).
    pub fn remove(&mut self, p: Point, payload: T) -> bool {
        let bucket = &mut self.buckets[self.grid.cell_of(p).index()];
        match bucket.binary_search_by(|&(_, t)| t.cmp(&payload)) {
            Ok(pos) => {
                bucket.remove(pos);
                self.len -= 1;
                if !self.grid.region().contains(p) {
                    self.outside -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Moves the point with `payload` from `from` to `to` — the
    /// relocation of a worker that finished a task. Equivalent to
    /// `remove(from, payload)` + `insert(to, payload)`.
    ///
    /// # Panics
    /// Panics if the point was not present at `from`.
    pub fn relocate(&mut self, from: Point, to: Point, payload: T) {
        assert!(
            self.remove(from, payload),
            "relocate of a payload that is not live at `from`"
        );
        self.insert(to, payload);
    }

    /// Calls `f(point, payload)` for every live point within the closed
    /// disc of `radius` around `center`, in the same order as a fresh
    /// [`crate::BucketIndex`] built over the live set in ascending
    /// payload order.
    pub fn for_each_within_disc(&self, center: Point, radius: f64, f: impl FnMut(Point, T)) {
        for_each_within_disc_impl(self, center, radius, f);
    }

    /// Collects all payloads within the closed disc around `center`.
    pub fn within_disc(&self, center: Point, radius: f64) -> Vec<T> {
        let mut out = Vec::new();
        self.for_each_within_disc(center, radius, |_, t| out.push(t));
        out
    }

    /// The `k` nearest qualifying points within `radius` of `center`
    /// under the total `(distance, payload)` order — identical results
    /// to [`crate::BucketIndex::k_nearest_within`] on the same live set,
    /// whatever grid either index uses.
    pub fn k_nearest_within(
        &self,
        center: Point,
        radius: f64,
        k: usize,
        accept: impl FnMut(f64, T) -> bool,
    ) -> Vec<(f64, T)> {
        k_nearest_within_impl(self, center, radius, k, accept)
    }

    /// [`DynamicBucketIndex::k_nearest_within`] writing into a
    /// caller-supplied buffer (cleared first) — same results, no
    /// per-query allocation, for hot loops issuing many queries per
    /// period (the sharded service's capped graph build).
    pub fn k_nearest_within_into(
        &self,
        center: Point,
        radius: f64,
        k: usize,
        accept: impl FnMut(f64, T) -> bool,
        out: &mut Vec<(f64, T)>,
    ) {
        crate::index::k_nearest_within_into_impl(self, center, radius, k, accept, out);
    }
}

impl<T: Copy> BucketStore<T> for DynamicBucketIndex<T> {
    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn any_outside(&self) -> bool {
        self.outside > 0
    }

    fn cell_entries(&self, cell: usize) -> &[(Point, T)] {
        &self.buckets[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BucketIndex;

    use maps_testkit::XorShift;

    /// Fresh static index over `live` (ascending payload), same grid.
    fn rebuild(grid: GridSpec, live: &[(Point, u32)]) -> BucketIndex<u32> {
        let mut sorted = live.to_vec();
        sorted.sort_by_key(|&(_, t)| t);
        BucketIndex::build_with_grid(grid, &sorted)
    }

    fn disc_trace(
        q: impl Fn(Point, f64, &mut dyn FnMut(Point, u32)),
        c: Point,
        r: f64,
    ) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        q(c, r, &mut |p, t| {
            out.push((p.x.to_bits(), p.y.to_bits(), t))
        });
        out
    }

    /// Random insert/remove/relocate churn: every query result (order
    /// included) must equal a fresh static rebuild of the live set.
    #[test]
    fn queries_match_fresh_rebuild_under_churn() {
        let grid = GridSpec::square(Rect::square(100.0), 9);
        let mut dynamic = DynamicBucketIndex::new(grid);
        let mut live: Vec<(Point, u32)> = Vec::new();
        let mut rng = XorShift(0x5EED);
        let mut next_id = 0u32;
        for step in 0..400 {
            let op = rng.next_u64() % 4;
            if op == 0 || live.len() < 4 {
                // ~8% of points land outside the region to exercise the
                // clamped-bucket bookkeeping.
                let scale = if rng.next_u64().is_multiple_of(12) {
                    130.0
                } else {
                    100.0
                };
                let p = Point::new(rng.next_f64() * scale - 10.0, rng.next_f64() * scale - 10.0);
                dynamic.insert(p, next_id);
                live.push((p, next_id));
                next_id += 1;
            } else if op == 1 {
                let victim = (rng.next_u64() as usize) % live.len();
                let (p, id) = live.swap_remove(victim);
                assert!(dynamic.remove(p, id));
            } else if op == 2 {
                let mover = (rng.next_u64() as usize) % live.len();
                let to = Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0);
                let (from, id) = live[mover];
                dynamic.relocate(from, to, id);
                live[mover].0 = to;
            }
            if step % 13 != 0 {
                continue;
            }
            assert_eq!(dynamic.len(), live.len());
            let fresh = rebuild(grid, &live);
            let c = Point::new(rng.next_f64() * 110.0 - 5.0, rng.next_f64() * 110.0 - 5.0);
            let r = rng.next_f64() * 40.0;
            assert_eq!(
                disc_trace(|c, r, f| dynamic.for_each_within_disc(c, r, f), c, r),
                disc_trace(|c, r, f| fresh.for_each_within_disc(c, r, f), c, r),
                "disc trace diverged at step {step}"
            );
            let k = 1 + (rng.next_u64() as usize) % 8;
            let got = dynamic.k_nearest_within(c, r, k, |_, t| t % 3 != 0);
            let want = fresh.k_nearest_within(c, r, k, |_, t| t % 3 != 0);
            assert_eq!(got.len(), want.len(), "k-nearest count at step {step}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0.to_bits(), w.0.to_bits(), "distance bits at step {step}");
                assert_eq!(g.1, w.1, "payload at step {step}");
            }
        }
    }

    /// The `(distance, payload)` order makes k-nearest independent of
    /// the bucketing grid, including between dynamic and static stores.
    #[test]
    fn k_nearest_is_grid_independent_under_ties() {
        // Four points exactly equidistant from the query centre.
        let items = [
            (Point::new(5.0, 7.0), 3u32),
            (Point::new(5.0, 3.0), 0),
            (Point::new(3.0, 5.0), 2),
            (Point::new(7.0, 5.0), 1),
        ];
        let ids = |v: Vec<(f64, u32)>| v.into_iter().map(|(_, t)| t).collect::<Vec<_>>();
        for side in [1u32, 2, 5, 16] {
            let grid = GridSpec::square(Rect::square(10.0), side);
            let mut dynamic = DynamicBucketIndex::new(grid);
            for &(p, t) in &items {
                dynamic.insert(p, t);
            }
            let fresh = BucketIndex::build_with_grid(grid, &items);
            let c = Point::new(5.0, 5.0);
            assert_eq!(
                ids(dynamic.k_nearest_within(c, 5.0, 2, |_, _| true)),
                vec![0, 1],
                "side {side}"
            );
            assert_eq!(
                ids(fresh.k_nearest_within(c, 5.0, 2, |_, _| true)),
                vec![0, 1],
                "static side {side}"
            );
        }
    }

    #[test]
    fn remove_of_absent_payload_returns_false() {
        let mut idx = DynamicBucketIndex::new(GridSpec::square(Rect::square(10.0), 4));
        idx.insert(Point::new(1.0, 1.0), 7u32);
        assert!(!idx.remove(Point::new(1.0, 1.0), 8));
        // Wrong bucket: same payload, different cell.
        assert!(!idx.remove(Point::new(9.0, 9.0), 7));
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(Point::new(1.0, 1.0), 7));
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate payload")]
    fn duplicate_insert_in_same_bucket_panics() {
        let mut idx = DynamicBucketIndex::new(GridSpec::square(Rect::square(10.0), 2));
        idx.insert(Point::new(1.0, 1.0), 7u32);
        idx.insert(Point::new(1.5, 1.5), 7u32);
    }

    #[test]
    fn outside_points_keep_queries_exact() {
        let grid = GridSpec::square(Rect::square(10.0), 4);
        let mut idx = DynamicBucketIndex::new(grid);
        idx.insert(Point::new(12.0, 12.0), 0u32);
        idx.insert(Point::new(9.0, 9.0), 1);
        let got: Vec<u32> = idx
            .k_nearest_within(Point::new(11.0, 11.0), 5.0, 2, |_, _| true)
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(got, vec![0, 1]);
        // Removing the outside point re-enables ring termination; results
        // stay exact either way.
        assert!(idx.remove(Point::new(12.0, 12.0), 0));
        assert_eq!(idx.within_disc(Point::new(9.0, 9.0), 0.5), vec![1]);
    }

    #[test]
    fn expected_len_sizing_matches_static_heuristic() {
        let idx = DynamicBucketIndex::<u32>::with_expected_len(Rect::square(100.0), 10_000);
        assert_eq!(idx.grid().nx(), 100);
        let idx = DynamicBucketIndex::<u32>::with_expected_len(Rect::square(100.0), 1_000_000);
        assert_eq!(idx.grid().nx(), 256, "clamped at 256 per side");
    }
}
