//! Incremental bucket index for churn-driven workloads.
//!
//! [`crate::BucketIndex`] is rebuilt from scratch every time period, which
//! makes per-period cost proportional to the standing point set. In the
//! paper's 500k-worker scalability setting the set barely changes between
//! periods (a few percent of workers arrive, expire or relocate), so the
//! rebuild dominates. [`DynamicBucketIndex`] keeps the same bucketed
//! layout mutable: `insert` / `remove` / `relocate` cost one binary
//! search plus a slot shift in a single bucket, turning per-period index
//! maintenance into `O(churn · log bucket)`. Each bucket stores its
//! points struct-of-arrays (`xs` / `ys` / `payloads` lanes) so the
//! capped k-nearest distance loop runs over contiguous `f64` slices.
//!
//! ## Stable iteration order
//!
//! Each bucket keeps its slots **sorted by payload**. A fresh
//! [`crate::BucketIndex::build_with_grid`] over the same live set listed
//! in ascending payload order buckets points with a stable counting sort,
//! so its per-cell order is also ascending payload — both stores answer
//! disc queries through the same shared core in the same order, making
//! their results bit-identical. `k_nearest_within` additionally orders by
//! the total `(distance, payload)` key, so capped queries agree even
//! between *differently sized* grids (the dynamic grid is fixed at
//! creation while a fresh build sizes its grid by `√n`).

use crate::geom::{Point, Rect};
use crate::grid::GridSpec;
use crate::index::{for_each_within_disc_impl, k_nearest_within_impl, BucketStore};

/// One cell's live points in struct-of-arrays layout: coordinates in
/// dense `f64` lanes separate from the payloads, kept sorted by payload.
/// The split is what lets the shared query cores run their distance
/// arithmetic over contiguous `f64` slices (SIMD-friendly) instead of
/// striding over `(Point, T)` tuples.
#[derive(Debug, Clone)]
struct CellSoA<T> {
    xs: Vec<f64>,
    ys: Vec<f64>,
    payloads: Vec<T>,
}

impl<T> CellSoA<T> {
    const fn new() -> Self {
        Self {
            xs: Vec::new(),
            ys: Vec::new(),
            payloads: Vec::new(),
        }
    }
}

/// A mutable bucket index over a changing set of points.
///
/// Payloads must be unique while live (they identify the point for
/// `remove` / `relocate`); the index panics on a duplicate insert into
/// the same bucket, the cheapest detectable violation.
#[derive(Debug, Clone)]
pub struct DynamicBucketIndex<T> {
    grid: GridSpec,
    /// `buckets[c]` holds the live points of cell `c`, sorted by payload.
    buckets: Vec<CellSoA<T>>,
    len: usize,
    /// Number of live points outside the grid region (disables the
    /// ring-search early termination while non-zero, exactly like the
    /// static index's `any_outside` flag).
    outside: usize,
}

impl<T: Copy + Ord> DynamicBucketIndex<T> {
    /// An empty index bucketed by `grid`. The grid is fixed for the
    /// index's lifetime; pick a resolution for the *expected* population
    /// (see [`DynamicBucketIndex::with_expected_len`]).
    pub fn new(grid: GridSpec) -> Self {
        let cells = grid.num_cells();
        Self {
            grid,
            buckets: (0..cells).map(|_| CellSoA::new()).collect(),
            len: 0,
            outside: 0,
        }
    }

    /// An empty index over `region` with the bucket resolution the static
    /// index would pick for `expected_len` points (`√n × √n`, clamped to
    /// ≤ 256 per side).
    pub fn with_expected_len(region: Rect, expected_len: usize) -> Self {
        let n = expected_len.max(1);
        let side = ((n as f64).sqrt().ceil() as u32).clamp(1, 256);
        Self::new(GridSpec::new(region, side, side))
    }

    /// The bucketing grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point.
    ///
    /// # Panics
    /// Panics if `payload` is already live in the same bucket.
    pub fn insert(&mut self, p: Point, payload: T) {
        let bucket = &mut self.buckets[self.grid.cell_of(p).index()];
        match bucket.payloads.binary_search(&payload) {
            Ok(_) => panic!("duplicate payload inserted into dynamic index"),
            Err(pos) => {
                bucket.xs.insert(pos, p.x);
                bucket.ys.insert(pos, p.y);
                bucket.payloads.insert(pos, payload);
            }
        }
        self.len += 1;
        if !self.grid.region().contains(p) {
            self.outside += 1;
        }
    }

    /// Removes the point previously inserted at `p` with `payload`.
    /// Returns whether it was present (callers enforcing a stricter
    /// contract can treat `false` as a bug).
    pub fn remove(&mut self, p: Point, payload: T) -> bool {
        let bucket = &mut self.buckets[self.grid.cell_of(p).index()];
        match bucket.payloads.binary_search(&payload) {
            Ok(pos) => {
                bucket.xs.remove(pos);
                bucket.ys.remove(pos);
                bucket.payloads.remove(pos);
                self.len -= 1;
                if !self.grid.region().contains(p) {
                    self.outside -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Moves the point with `payload` from `from` to `to` — the
    /// relocation of a worker that finished a task. Equivalent to
    /// `remove(from, payload)` + `insert(to, payload)`.
    ///
    /// # Panics
    /// Panics if the point was not present at `from`.
    pub fn relocate(&mut self, from: Point, to: Point, payload: T) {
        assert!(
            self.remove(from, payload),
            "relocate of a payload that is not live at `from`"
        );
        self.insert(to, payload);
    }

    /// Inserts a batch of points with **one merge pass per touched
    /// bucket** instead of one `O(bucket)` lane shift per point. The
    /// resulting buckets are identical to inserting the items one by
    /// one (sorted by payload), so queries stay bit-identical — this is
    /// purely the churn-application fast path: a period applying `a`
    /// arrivals into a bucket of `b` points moves `O(a + b)` slots
    /// instead of `O(a · b)`.
    ///
    /// # Panics
    /// Panics if any payload is already live in the same bucket (or
    /// duplicated within `items` into the same bucket).
    pub fn insert_bulk(&mut self, items: &[(Point, T)]) {
        if items.len() <= 1 {
            if let Some(&(p, t)) = items.first() {
                self.insert(p, t);
            }
            return;
        }
        // Group by (cell, payload): each group is a payload-sorted run
        // ready to back-merge into its bucket's payload-sorted lanes.
        let mut tagged: Vec<(u32, T, Point)> = items
            .iter()
            .map(|&(p, t)| (self.grid.cell_of(p).index() as u32, t, p))
            .collect();
        tagged.sort_unstable_by_key(|&(cell, payload, _)| (cell, payload));
        let mut start = 0;
        while start < tagged.len() {
            let cell = tagged[start].0;
            let mut end = start + 1;
            while end < tagged.len() && tagged[end].0 == cell {
                end += 1;
            }
            merge_group(&mut self.buckets[cell as usize], &tagged[start..end]);
            start = end;
        }
        self.len += items.len();
        let region = self.grid.region();
        self.outside += items.iter().filter(|&&(p, _)| !region.contains(p)).count();
    }

    /// Removes a batch of points with **one compaction pass per touched
    /// bucket** instead of one `O(bucket)` lane shift per point —
    /// the departure-side twin of [`DynamicBucketIndex::insert_bulk`].
    /// Each `(point, payload)` pair must match how the point was
    /// inserted (the point selects the bucket). Returns how many were
    /// found and removed; callers enforcing a stricter contract can
    /// compare against `items.len()`.
    pub fn remove_bulk(&mut self, items: &[(Point, T)]) -> usize {
        if items.len() <= 1 {
            return match items.first() {
                Some(&(p, t)) => usize::from(self.remove(p, t)),
                None => 0,
            };
        }
        let mut tagged: Vec<(u32, T, Point)> = items
            .iter()
            .map(|&(p, t)| (self.grid.cell_of(p).index() as u32, t, p))
            .collect();
        tagged.sort_unstable_by_key(|&(cell, payload, _)| (cell, payload));
        let region = self.grid.region();
        let mut removed = 0usize;
        let mut start = 0;
        while start < tagged.len() {
            let cell = tagged[start].0;
            let mut end = start + 1;
            while end < tagged.len() && tagged[end].0 == cell {
                end += 1;
            }
            let group = &tagged[start..end];
            let bucket = &mut self.buckets[cell as usize];
            // Two-pointer compaction: both the bucket lanes and the
            // group are payload-sorted, so one forward pass keeps every
            // survivor in order.
            let len = bucket.payloads.len();
            let mut write = 0usize;
            let mut g = 0usize;
            for read in 0..len {
                while g < group.len() && group[g].1 < bucket.payloads[read] {
                    g += 1;
                }
                if g < group.len() && group[g].1 == bucket.payloads[read] {
                    removed += 1;
                    if !region.contains(group[g].2) {
                        self.outside -= 1;
                    }
                    g += 1;
                    continue;
                }
                bucket.xs[write] = bucket.xs[read];
                bucket.ys[write] = bucket.ys[read];
                bucket.payloads[write] = bucket.payloads[read];
                write += 1;
            }
            bucket.xs.truncate(write);
            bucket.ys.truncate(write);
            bucket.payloads.truncate(write);
            start = end;
        }
        self.len -= removed;
        removed
    }

    /// Calls `f(point, payload)` for every live point within the closed
    /// disc of `radius` around `center`, in the same order as a fresh
    /// [`crate::BucketIndex`] built over the live set in ascending
    /// payload order.
    pub fn for_each_within_disc(&self, center: Point, radius: f64, f: impl FnMut(Point, T)) {
        for_each_within_disc_impl(self, center, radius, f);
    }

    /// Collects all payloads within the closed disc around `center`.
    pub fn within_disc(&self, center: Point, radius: f64) -> Vec<T> {
        let mut out = Vec::new();
        self.for_each_within_disc(center, radius, |_, t| out.push(t));
        out
    }

    /// The `k` nearest qualifying points within `radius` of `center`
    /// under the total `(distance, payload)` order — identical results
    /// to [`crate::BucketIndex::k_nearest_within`] on the same live set,
    /// whatever grid either index uses.
    pub fn k_nearest_within(
        &self,
        center: Point,
        radius: f64,
        k: usize,
        accept: impl FnMut(f64, T) -> bool,
    ) -> Vec<(f64, T)> {
        k_nearest_within_impl(self, center, radius, k, accept)
    }

    /// [`DynamicBucketIndex::k_nearest_within`] writing into a
    /// caller-supplied buffer (cleared first) — same results, no
    /// per-query allocation, for hot loops issuing many queries per
    /// period (the sharded service's capped graph build).
    pub fn k_nearest_within_into(
        &self,
        center: Point,
        radius: f64,
        k: usize,
        accept: impl FnMut(f64, T) -> bool,
        out: &mut Vec<(f64, T)>,
    ) {
        crate::index::k_nearest_within_into_impl(self, center, radius, k, accept, out);
    }
}

/// Back-merges one payload-sorted group of `(cell, payload, point)`
/// entries into a bucket whose lanes are payload-sorted: the new run is
/// copied to a scratch, the lanes grow by `n`, and one backwards merge
/// writes every slot exactly once — `O(old + n)` moves total, against
/// `O(n · old)` for `n` one-at-a-time sorted inserts. Panics on any
/// payload collision (within the group or against the bucket), matching
/// [`DynamicBucketIndex::insert`].
fn merge_group<T: Copy + Ord>(bucket: &mut CellSoA<T>, group: &[(u32, T, Point)]) {
    for pair in group.windows(2) {
        assert!(
            pair[0].1 != pair[1].1,
            "duplicate payload inserted into dynamic index"
        );
    }
    let old = bucket.payloads.len();
    let n = group.len();
    let scratch: Vec<(f64, f64, T)> = group.iter().map(|g| (g.2.x, g.2.y, g.1)).collect();
    bucket.xs.resize(old + n, 0.0);
    bucket.ys.resize(old + n, 0.0);
    bucket.payloads.extend(group.iter().map(|g| g.1));
    let mut wp = old + n;
    let mut ro = old;
    let mut rn = n;
    while rn > 0 {
        if ro > 0 {
            assert!(
                bucket.payloads[ro - 1] != scratch[rn - 1].2,
                "duplicate payload inserted into dynamic index"
            );
        }
        wp -= 1;
        if ro > 0 && bucket.payloads[ro - 1] > scratch[rn - 1].2 {
            bucket.xs[wp] = bucket.xs[ro - 1];
            bucket.ys[wp] = bucket.ys[ro - 1];
            bucket.payloads[wp] = bucket.payloads[ro - 1];
            ro -= 1;
        } else {
            bucket.xs[wp] = scratch[rn - 1].0;
            bucket.ys[wp] = scratch[rn - 1].1;
            bucket.payloads[wp] = scratch[rn - 1].2;
            rn -= 1;
        }
    }
}

impl<T: Copy> BucketStore<T> for DynamicBucketIndex<T> {
    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn any_outside(&self) -> bool {
        self.outside > 0
    }

    fn cell_slices(&self, cell: usize) -> (&[f64], &[f64], &[T]) {
        let bucket = &self.buckets[cell];
        (&bucket.xs, &bucket.ys, &bucket.payloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BucketIndex;

    use maps_testkit::XorShift;

    /// Fresh static index over `live` (ascending payload), same grid.
    fn rebuild(grid: GridSpec, live: &[(Point, u32)]) -> BucketIndex<u32> {
        let mut sorted = live.to_vec();
        sorted.sort_by_key(|&(_, t)| t);
        BucketIndex::build_with_grid(grid, &sorted)
    }

    fn disc_trace(
        q: impl Fn(Point, f64, &mut dyn FnMut(Point, u32)),
        c: Point,
        r: f64,
    ) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        q(c, r, &mut |p, t| {
            out.push((p.x.to_bits(), p.y.to_bits(), t))
        });
        out
    }

    /// Random insert/remove/relocate churn: every query result (order
    /// included) must equal a fresh static rebuild of the live set.
    #[test]
    fn queries_match_fresh_rebuild_under_churn() {
        let grid = GridSpec::square(Rect::square(100.0), 9);
        let mut dynamic = DynamicBucketIndex::new(grid);
        let mut live: Vec<(Point, u32)> = Vec::new();
        let mut rng = XorShift(0x5EED);
        let mut next_id = 0u32;
        for step in 0..400 {
            let op = rng.next_u64() % 4;
            if op == 0 || live.len() < 4 {
                // ~8% of points land outside the region to exercise the
                // clamped-bucket bookkeeping.
                let scale = if rng.next_u64().is_multiple_of(12) {
                    130.0
                } else {
                    100.0
                };
                let p = Point::new(rng.next_f64() * scale - 10.0, rng.next_f64() * scale - 10.0);
                dynamic.insert(p, next_id);
                live.push((p, next_id));
                next_id += 1;
            } else if op == 1 {
                let victim = (rng.next_u64() as usize) % live.len();
                let (p, id) = live.swap_remove(victim);
                assert!(dynamic.remove(p, id));
            } else if op == 2 {
                let mover = (rng.next_u64() as usize) % live.len();
                let to = Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0);
                let (from, id) = live[mover];
                dynamic.relocate(from, to, id);
                live[mover].0 = to;
            }
            if step % 13 != 0 {
                continue;
            }
            assert_eq!(dynamic.len(), live.len());
            let fresh = rebuild(grid, &live);
            let c = Point::new(rng.next_f64() * 110.0 - 5.0, rng.next_f64() * 110.0 - 5.0);
            let r = rng.next_f64() * 40.0;
            assert_eq!(
                disc_trace(|c, r, f| dynamic.for_each_within_disc(c, r, f), c, r),
                disc_trace(|c, r, f| fresh.for_each_within_disc(c, r, f), c, r),
                "disc trace diverged at step {step}"
            );
            let k = 1 + (rng.next_u64() as usize) % 8;
            let got = dynamic.k_nearest_within(c, r, k, |_, t| t % 3 != 0);
            let want = fresh.k_nearest_within(c, r, k, |_, t| t % 3 != 0);
            assert_eq!(got.len(), want.len(), "k-nearest count at step {step}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0.to_bits(), w.0.to_bits(), "distance bits at step {step}");
                assert_eq!(g.1, w.1, "payload at step {step}");
            }
        }
    }

    /// The `(distance, payload)` order makes k-nearest independent of
    /// the bucketing grid, including between dynamic and static stores.
    #[test]
    fn k_nearest_is_grid_independent_under_ties() {
        // Four points exactly equidistant from the query centre.
        let items = [
            (Point::new(5.0, 7.0), 3u32),
            (Point::new(5.0, 3.0), 0),
            (Point::new(3.0, 5.0), 2),
            (Point::new(7.0, 5.0), 1),
        ];
        let ids = |v: Vec<(f64, u32)>| v.into_iter().map(|(_, t)| t).collect::<Vec<_>>();
        for side in [1u32, 2, 5, 16] {
            let grid = GridSpec::square(Rect::square(10.0), side);
            let mut dynamic = DynamicBucketIndex::new(grid);
            for &(p, t) in &items {
                dynamic.insert(p, t);
            }
            let fresh = BucketIndex::build_with_grid(grid, &items);
            let c = Point::new(5.0, 5.0);
            assert_eq!(
                ids(dynamic.k_nearest_within(c, 5.0, 2, |_, _| true)),
                vec![0, 1],
                "side {side}"
            );
            assert_eq!(
                ids(fresh.k_nearest_within(c, 5.0, 2, |_, _| true)),
                vec![0, 1],
                "static side {side}"
            );
        }
    }

    #[test]
    fn remove_of_absent_payload_returns_false() {
        let mut idx = DynamicBucketIndex::new(GridSpec::square(Rect::square(10.0), 4));
        idx.insert(Point::new(1.0, 1.0), 7u32);
        assert!(!idx.remove(Point::new(1.0, 1.0), 8));
        // Wrong bucket: same payload, different cell.
        assert!(!idx.remove(Point::new(9.0, 9.0), 7));
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(Point::new(1.0, 1.0), 7));
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate payload")]
    fn duplicate_insert_in_same_bucket_panics() {
        let mut idx = DynamicBucketIndex::new(GridSpec::square(Rect::square(10.0), 2));
        idx.insert(Point::new(1.0, 1.0), 7u32);
        idx.insert(Point::new(1.5, 1.5), 7u32);
    }

    #[test]
    fn outside_points_keep_queries_exact() {
        let grid = GridSpec::square(Rect::square(10.0), 4);
        let mut idx = DynamicBucketIndex::new(grid);
        idx.insert(Point::new(12.0, 12.0), 0u32);
        idx.insert(Point::new(9.0, 9.0), 1);
        let got: Vec<u32> = idx
            .k_nearest_within(Point::new(11.0, 11.0), 5.0, 2, |_, _| true)
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(got, vec![0, 1]);
        // Removing the outside point re-enables ring termination; results
        // stay exact either way.
        assert!(idx.remove(Point::new(12.0, 12.0), 0));
        assert_eq!(idx.within_disc(Point::new(9.0, 9.0), 0.5), vec![1]);
    }

    /// Degenerate cap values: `k = 0` returns nothing, and any `k` at or
    /// beyond the live-set size returns the whole in-radius set in
    /// `(distance, payload)` order — capped and uncapped queries agree.
    #[test]
    fn k_nearest_degenerate_k_values() {
        let grid = GridSpec::square(Rect::square(100.0), 9);
        let mut dynamic = DynamicBucketIndex::new(grid);
        let mut live: Vec<(Point, u32)> = Vec::new();
        let mut rng = XorShift(0xD0_5EED);
        for id in 0..37u32 {
            let p = Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0);
            dynamic.insert(p, id);
            live.push((p, id));
        }
        let c = Point::new(50.0, 50.0);
        let r = 35.0;
        assert!(dynamic.k_nearest_within(c, r, 0, |_, _| true).is_empty());
        let mut buf = Vec::new();
        dynamic.k_nearest_within_into(c, r, 0, |_, _| true, &mut buf);
        assert!(buf.is_empty());
        // Every k >= the live-set size yields the identical full
        // in-radius answer (fresh-rebuild order), bit for bit.
        let fresh = rebuild(grid, &live);
        let all = fresh.k_nearest_within(c, r, live.len(), |_, _| true);
        assert!(!all.is_empty(), "fixture must have in-radius points");
        for k in [live.len(), live.len() + 1, usize::MAX] {
            let got = dynamic.k_nearest_within(c, r, k, |_, _| true);
            assert_eq!(got.len(), all.len(), "k={k}");
            for (g, w) in got.iter().zip(&all) {
                assert_eq!(g.0.to_bits(), w.0.to_bits(), "k={k}");
                assert_eq!(g.1, w.1, "k={k}");
            }
        }
    }

    #[test]
    fn expected_len_sizing_matches_static_heuristic() {
        let idx = DynamicBucketIndex::<u32>::with_expected_len(Rect::square(100.0), 10_000);
        assert_eq!(idx.grid().nx(), 100);
        let idx = DynamicBucketIndex::<u32>::with_expected_len(Rect::square(100.0), 1_000_000);
        assert_eq!(idx.grid().nx(), 256, "clamped at 256 per side");
    }
}
