//! Planar geometry primitives: points, rectangles, circles and distances.
//!
//! Everything operates on `f64` coordinates in an arbitrary planar unit
//! (the paper uses an abstract `100 × 100` square for synthetic workloads
//! and kilometres for the Beijing datasets).

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean (`L2`) distance to `other`.
    #[inline]
    pub fn euclidean(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance; avoids the square root when only
    /// comparisons against a squared radius are needed (hot path when
    /// building bipartite edges).
    #[inline]
    pub fn euclidean_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (`L1`) distance to `other`. The paper allows
    /// "Euclidean or road-network distance" for the travel distance `d_r`;
    /// Manhattan is the standard grid-road surrogate.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Distance under the given metric.
    #[inline]
    pub fn distance(self, other: Point, metric: DistanceMetric) -> f64 {
        match metric {
            DistanceMetric::Euclidean => self.euclidean(other),
            DistanceMetric::Manhattan => self.manhattan(other),
        }
    }

    /// Component-wise clamp of the point into `rect`.
    #[inline]
    pub fn clamped(self, rect: Rect) -> Point {
        Point::new(
            self.x.clamp(rect.min.x, rect.max.x),
            self.y.clamp(rect.min.y, rect.max.y),
        )
    }
}

/// The travel-distance metric used for `d_r` and the range constraint.
///
/// The paper's definition of a task says the worker travels "a total
/// distance `d_r` (e.g., Euclidean or road-network distance)". We support
/// Euclidean and the Manhattan road-grid surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceMetric {
    /// Straight-line `L2` distance (paper default in the running example).
    #[default]
    Euclidean,
    /// `L1` distance, a surrogate for grid-like road networks.
    Manhattan,
}

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Bottom-left corner.
    pub min: Point,
    /// Top-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners.
    ///
    /// # Panics
    /// Panics if `min` is not component-wise `<= max` or coordinates are
    /// not finite — the region of interest must be a proper rectangle.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x.is_finite() && min.y.is_finite() && max.x.is_finite() && max.y.is_finite(),
            "rect corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rect min must be <= max: min={min:?} max={max:?}"
        );
        Self { min, max }
    }

    /// The `side × side` square anchored at the origin; the paper's
    /// synthetic region is `Rect::square(100.0)`.
    pub fn square(side: f64) -> Self {
        Self::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Rectangle width (x-extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Rectangle height (y-extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// Whether `p` lies inside the rectangle (closed on all sides).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Smallest distance from `p` to the rectangle (0 if inside).
    /// Used to prune grid buckets during radius queries.
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// A circle, used for the worker range constraint of Definition 4:
/// worker `w` can serve task `r` iff `ori_r` lies within the circle centred
/// at `l_w` with radius `a_w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Centre of the circle (the worker's location `l_w`).
    pub center: Point,
    /// Radius (the worker's reachability radius `a_w`).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    /// Panics on a negative or non-finite radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Self { center, radius }
    }

    /// Whether `p` is inside or on the circle (the paper's constraint is
    /// "located within the circle", which we read as the closed disc).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.euclidean_sq(p) <= self.radius * self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
        assert!((a.euclidean_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 7.25);
        assert_eq!(a.euclidean(b), b.euclidean(a));
    }

    #[test]
    fn manhattan_distance() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, -1.0);
        assert!((a.manhattan(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn metric_dispatch() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        assert!((a.distance(b, DistanceMetric::Euclidean) - 2f64.sqrt()).abs() < 1e-12);
        assert!((a.distance(b, DistanceMetric::Manhattan) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(10.0001, 5.0)));
        assert!(!r.contains(Point::new(-0.0001, 5.0)));
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(Point::new(1.0, 2.0), Point::new(4.0, 8.0));
        assert!((r.width() - 3.0).abs() < 1e-12);
        assert!((r.height() - 6.0).abs() < 1e-12);
        assert!((r.area() - 18.0).abs() < 1e-12);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
    }

    #[test]
    fn rect_distance_to_point() {
        let r = Rect::square(2.0);
        assert_eq!(r.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert!((r.distance_to_point(Point::new(5.0, 1.0)) - 3.0).abs() < 1e-12);
        assert!((r.distance_to_point(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rect min must be <= max")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn circle_contains_closed_disc() {
        // The running example: worker range radius 2.5.
        let w1 = Circle::new(Point::new(3.0, 5.0), 2.5);
        assert!(w1.contains(Point::new(5.0, 5.0))); // r1 at distance 2
        assert!(w1.contains(Point::new(2.0, 6.0))); // r3 at distance sqrt(2)
        assert!(w1.contains(Point::new(1.0, 5.0))); // r2 at distance 2
        assert!(w1.contains(Point::new(5.5, 5.0))); // exactly on the boundary
        assert!(!w1.contains(Point::new(5.6, 5.0)));
    }

    #[test]
    #[should_panic(expected = "circle radius")]
    fn circle_rejects_negative_radius() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn point_clamped_into_rect() {
        let r = Rect::square(10.0);
        assert_eq!(Point::new(-5.0, 3.0).clamped(r), Point::new(0.0, 3.0));
        assert_eq!(Point::new(12.0, 13.0).clamped(r), Point::new(10.0, 10.0));
        assert_eq!(Point::new(4.0, 4.0).clamped(r), Point::new(4.0, 4.0));
    }
}
