//! Grid partitioning of the region of interest (Definition 1).
//!
//! The paper: *"The entire spatial region of interest is partitioned into
//! grid cells, indexed by 1, …, G"*, indexed from the bottom-left
//! (Example 2 / Fig. 1c). We use 0-based [`CellId`]s internally; the
//! paper's 1-based grid number is `CellId::index() + 1`.

use crate::geom::{Point, Rect};

/// Identifier of one grid cell (a local market). 0-based, row-major from
/// the bottom-left, matching the paper's Fig. 1c numbering minus one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The flat 0-based index of this cell.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The paper's 1-based grid number (Fig. 1c labels cells 1..=16).
    #[inline]
    pub fn paper_number(self) -> usize {
        self.0 as usize + 1
    }
}

impl From<usize> for CellId {
    fn from(i: usize) -> Self {
        CellId(u32::try_from(i).expect("cell index exceeds u32"))
    }
}

/// A rectangular region partitioned into `nx × ny` equal cells.
///
/// All pricing state in the MAPS system is keyed by the cell a task's
/// origin falls into, so this type is deliberately tiny and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    region: Rect,
    nx: u32,
    ny: u32,
    cell_w: f64,
    cell_h: f64,
}

impl GridSpec {
    /// Partitions `region` into `nx` columns and `ny` rows.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the region is degenerate.
    pub fn new(region: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "region must have positive area"
        );
        Self {
            region,
            nx,
            ny,
            cell_w: region.width() / nx as f64,
            cell_h: region.height() / ny as f64,
        }
    }

    /// Square `n × n` grid over the region — the paper's synthetic
    /// configurations are `G ∈ {5×5, 10×10, 15×15, 20×20, 25×25}`.
    pub fn square(region: Rect, n: u32) -> Self {
        Self::new(region, n, n)
    }

    /// The underlying region of interest.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells `G = nx × ny`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        (self.nx as usize) * (self.ny as usize)
    }

    /// Width of one cell.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_w
    }

    /// Height of one cell.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_h
    }

    /// Maps a point to its cell. Points outside the region are clamped to
    /// the nearest boundary cell; points exactly on the top/right edge
    /// belong to the last row/column (the paper places `w2 = (7,5)` of the
    /// 8×8 example in grid 8, i.e. the boundary is half-open except at the
    /// region's outer edge).
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellId {
        let (cx, cy) = self.cell_coords(p);
        CellId(cy * self.nx + cx)
    }

    /// Column/row coordinates of the cell containing `p` (clamped).
    ///
    /// Clamping gives every *finite* point a well-defined cell — even
    /// ±∞, which saturates to the boundary row/column. NaN has no cell
    /// at all: `NaN as i64` is 0, so a NaN coordinate would silently
    /// file the point under the first row/column and corrupt per-cell
    /// pricing state invisibly. That is a caller bug (admission paths
    /// must validate coordinates), caught here in debug builds.
    #[inline]
    pub fn cell_coords(&self, p: Point) -> (u32, u32) {
        debug_assert!(
            !p.x.is_nan() && !p.y.is_nan(),
            "a NaN coordinate has no grid cell: {p:?}"
        );
        let fx = (p.x - self.region.min.x) / self.cell_w;
        let fy = (p.y - self.region.min.y) / self.cell_h;
        let cx = (fx.floor() as i64).clamp(0, self.nx as i64 - 1) as u32;
        let cy = (fy.floor() as i64).clamp(0, self.ny as i64 - 1) as u32;
        (cx, cy)
    }

    /// The rectangle covered by cell `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn cell_rect(&self, id: CellId) -> Rect {
        assert!(id.index() < self.num_cells(), "cell id out of range");
        let cx = id.0 % self.nx;
        let cy = id.0 / self.nx;
        let min = Point::new(
            self.region.min.x + cx as f64 * self.cell_w,
            self.region.min.y + cy as f64 * self.cell_h,
        );
        Rect::new(min, Point::new(min.x + self.cell_w, min.y + self.cell_h))
    }

    /// Centre of cell `id`.
    pub fn cell_center(&self, id: CellId) -> Point {
        self.cell_rect(id).center()
    }

    /// Iterates over every cell id.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells() as u32).map(CellId)
    }

    /// The 4-neighbourhood (von Neumann) of a cell, used by the spatial
    /// price-smoothing extension (paper Sec. 4.2.3, practical note ii).
    pub fn neighbors4(&self, id: CellId) -> impl Iterator<Item = CellId> + '_ {
        let cx = (id.0 % self.nx) as i64;
        let cy = (id.0 / self.nx) as i64;
        let nx = self.nx as i64;
        let ny = self.ny as i64;
        [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)]
            .into_iter()
            .filter_map(move |(dx, dy)| {
                let x = cx + dx;
                let y = cy + dy;
                (x >= 0 && x < nx && y >= 0 && y < ny).then(|| CellId((y * nx + x) as u32))
            })
    }

    /// All cells whose rectangle intersects the disc `(center, radius)`.
    /// This is the bucket-pruning primitive behind radius queries.
    pub fn cells_intersecting_disc(&self, center: Point, radius: f64) -> Vec<CellId> {
        let lo = Point::new(center.x - radius, center.y - radius).clamped(self.region);
        let hi = Point::new(center.x + radius, center.y + radius).clamped(self.region);
        let (cx0, cy0) = self.cell_coords(lo);
        let (cx1, cy1) = self.cell_coords(hi);
        let mut out = Vec::with_capacity(((cx1 - cx0 + 1) * (cy1 - cy0 + 1)) as usize);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let id = CellId(cy * self.nx + cx);
                if self.cell_rect(id).distance_to_point(center) <= radius {
                    out.push(id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 2 grid: 8×8 region, side-2 cells → 16 grids.
    fn example_grid() -> GridSpec {
        GridSpec::square(Rect::square(8.0), 4)
    }

    #[test]
    fn example2_cell_assignments() {
        // Example 2 / Example 5 of the paper pin the numbering convention:
        // "w3 is in grid 7", "r2 is in grid 9", "r3 is in grid 11"
        // (1-based ids, row-major from the bottom-left as in Fig. 1c).
        let g = example_grid();
        assert_eq!(g.cell_of(Point::new(5.0, 3.0)).paper_number(), 7); // w3
        assert_eq!(g.cell_of(Point::new(1.0, 5.0)).paper_number(), 9); // r2
        assert_eq!(g.cell_of(Point::new(5.0, 5.0)).paper_number(), 11); // r3
        assert_eq!(g.cell_of(Point::new(2.0, 6.0)).paper_number(), 14); // geometry check
    }

    #[test]
    fn cell_of_clamps_outside_points() {
        let g = example_grid();
        assert_eq!(g.cell_of(Point::new(-1.0, -1.0)).paper_number(), 1);
        assert_eq!(g.cell_of(Point::new(9.0, 9.0)).paper_number(), 16);
    }

    #[test]
    fn top_right_boundary_belongs_to_last_cell() {
        let g = example_grid();
        assert_eq!(g.cell_of(Point::new(8.0, 8.0)).paper_number(), 16);
        assert_eq!(g.cell_of(Point::new(8.0, 0.0)).paper_number(), 4);
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = GridSpec::new(
            Rect::new(Point::new(-10.0, 5.0), Point::new(30.0, 25.0)),
            8,
            5,
        );
        for id in g.cells() {
            let r = g.cell_rect(id);
            let c = g.cell_center(id);
            assert!(r.contains(c));
            assert_eq!(g.cell_of(c), id, "center of {id:?} must map back");
        }
    }

    #[test]
    fn num_cells_and_dims() {
        let g = GridSpec::square(Rect::square(100.0), 10);
        assert_eq!(g.num_cells(), 100);
        assert!((g.cell_width() - 10.0).abs() < 1e-12);
        assert!((g.cell_height() - 10.0).abs() < 1e-12);
        assert_eq!(g.cells().count(), 100);
    }

    #[test]
    fn neighbors4_corner_edge_interior() {
        let g = GridSpec::square(Rect::square(3.0), 3);
        // corner cell 0 has 2 neighbours
        let n0: Vec<_> = g.neighbors4(CellId(0)).map(|c| c.0).collect();
        assert_eq!(n0.len(), 2);
        assert!(n0.contains(&1) && n0.contains(&3));
        // edge cell 1 has 3 neighbours
        assert_eq!(g.neighbors4(CellId(1)).count(), 3);
        // interior cell 4 has 4 neighbours
        let n4: Vec<_> = g.neighbors4(CellId(4)).map(|c| c.0).collect();
        assert_eq!(n4.len(), 4);
        for c in [1u32, 3, 5, 7] {
            assert!(n4.contains(&c));
        }
    }

    #[test]
    fn cells_intersecting_disc_covers_disc() {
        let g = GridSpec::square(Rect::square(8.0), 4);
        // Disc centred in the middle of grid 7 (cell (2,1)) with radius 2.5
        // must include the cell itself and the direct neighbours.
        let hits = g.cells_intersecting_disc(Point::new(5.0, 3.0), 2.5);
        let self_cell = g.cell_of(Point::new(5.0, 3.0));
        assert!(hits.contains(&self_cell));
        for n in g.neighbors4(self_cell) {
            assert!(hits.contains(&n), "missing neighbour {n:?}");
        }
        // A tiny disc far from a cell must prune it.
        let hits_small = g.cells_intersecting_disc(Point::new(1.0, 1.0), 0.5);
        assert_eq!(hits_small, vec![g.cell_of(Point::new(1.0, 1.0))]);
    }

    #[test]
    fn disc_prunes_diagonal_corner_cells() {
        let g = GridSpec::square(Rect::square(8.0), 4);
        // Radius just over the cell half-diagonal from a cell centre cannot
        // reach the diagonally-opposite cell's nearest corner region.
        let hits = g.cells_intersecting_disc(Point::new(1.0, 1.0), 1.05);
        // cell (0,0) + right and top neighbours only; diagonal (1,1) cell's
        // nearest point is (2,2), at distance sqrt(2) ≈ 1.414 > 1.05.
        assert_eq!(hits.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = GridSpec::new(Rect::square(1.0), 0, 3);
    }
}
