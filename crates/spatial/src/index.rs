//! Bucketed spatial index for radius queries.
//!
//! Building the probabilistic bipartite graph `B^t` (Definition 5) requires,
//! for every worker `w`, all tasks whose origin lies within the disc
//! `(l_w, a_w)`. A naive scan is `O(|R|·|W|)` per period; the paper's
//! scalability experiment goes to `|R| = |W| = 500 000`, which makes the
//! naive scan infeasible. We bucket points by the cell of an internal
//! [`GridSpec`] and answer disc queries by scanning only the cells that
//! intersect the disc.

use crate::geom::{Point, Rect};
use crate::grid::GridSpec;

/// Internal abstraction over bucketed point storage: the static
/// [`BucketIndex`] keeps one CSR arena, the incremental
/// [`crate::DynamicBucketIndex`] keeps one sorted slot vector per cell.
/// Both answer queries through the shared [`for_each_within_disc_impl`] /
/// [`k_nearest_within_impl`] cores below, which is what makes their query
/// results bit-identical on the same point set.
///
/// Storage is struct-of-arrays: coordinates live in dense `f64` slices
/// separate from the payloads, so the distance loops in the query cores
/// compile to straight-line arithmetic over contiguous lanes (no
/// `(Point, T)` stride) and autovectorize.
pub(crate) trait BucketStore<T> {
    /// The bucketing grid.
    fn grid(&self) -> &GridSpec;
    /// Whether any stored point lies outside the grid region (disables
    /// the ring-search early termination of `k_nearest_within_impl`).
    fn any_outside(&self) -> bool;
    /// The points bucketed into `cell` as parallel `(xs, ys, payloads)`
    /// slices of equal length, in the store's iteration order.
    fn cell_slices(&self, cell: usize) -> (&[f64], &[f64], &[T]);
}

/// Calls `f(point, payload)` for every stored point within the closed
/// disc of `radius` around `center`.
///
/// Points are bucketed by their *clamped* position. Clamping is a
/// contraction (1-Lipschitz), so every point within `radius` of `center`
/// has a clamped position within `radius` of the clamped centre —
/// pruning on the clamped disc is therefore sound even for points (or
/// centres) outside the region.
pub(crate) fn for_each_within_disc_impl<T: Copy>(
    store: &impl BucketStore<T>,
    center: Point,
    radius: f64,
    mut f: impl FnMut(Point, T),
) {
    let r2 = radius * radius;
    let grid = store.grid();
    let bucket_center = center.clamped(grid.region());
    for cell in grid.cells_intersecting_disc(bucket_center, radius) {
        let (xs, ys, ts) = store.cell_slices(cell.index());
        // Same float sequence as `Point::euclidean_sq(p, center)`, over
        // SoA lanes.
        for i in 0..xs.len() {
            let dx = xs[i] - center.x;
            let dy = ys[i] - center.y;
            if dx * dx + dy * dy <= r2 {
                f(Point::new(xs[i], ys[i]), ts[i]);
            }
        }
    }
}

/// The `k` nearest qualifying points within `radius` of `center` under
/// the total order `(distance, payload)` — see
/// [`BucketIndex::k_nearest_within`] for the full contract. Because the
/// order is total, the result is independent of bucket layout and visit
/// order: two stores holding the same point set return the same `k`
/// pairs even when their grids differ.
pub(crate) fn k_nearest_within_impl<T: Copy + Ord>(
    store: &impl BucketStore<T>,
    center: Point,
    radius: f64,
    k: usize,
    accept: impl FnMut(f64, T) -> bool,
) -> Vec<(f64, T)> {
    let mut best = Vec::new();
    k_nearest_within_into_impl(store, center, radius, k, accept, &mut best);
    best
}

/// [`k_nearest_within_impl`] writing into a caller-supplied buffer
/// (cleared first), so per-query allocation amortizes away in hot loops
/// that issue many queries per period — the sharded service's capped
/// graph build issues `shards × tasks` of them per tick.
pub(crate) fn k_nearest_within_into_impl<T: Copy + Ord>(
    store: &impl BucketStore<T>,
    center: Point,
    radius: f64,
    k: usize,
    mut accept: impl FnMut(f64, T) -> bool,
    best: &mut Vec<(f64, T)>,
) {
    best.clear();
    if k == 0 {
        return;
    }
    let grid = store.grid();
    // Degenerate caps (k near usize::MAX, i.e. "uncapped") must not
    // overflow or over-reserve; growth past the hint is amortized anyway.
    best.reserve(k.saturating_add(1).min(1024));
    if store.any_outside() {
        for_each_within_disc_impl(store, center, radius, |p, t| {
            let d = p.euclidean(center);
            if prune(d, k, best) {
                return;
            }
            if accept(d, t) {
                push(d, t, k, best);
            }
        });
        return;
    }
    let (cx, cy) = grid.cell_coords(center.clamped(grid.region()));
    let (cx, cy) = (cx as i64, cy as i64);
    let nx = grid.nx() as i64;
    let ny = grid.ny() as i64;
    let min_side = grid.cell_width().min(grid.cell_height());
    let max_ring = (grid.nx().max(grid.ny())) as i64;
    let r2 = radius * radius;
    let mut visit = |x: i64, y: i64, best: &mut Vec<(f64, T)>| {
        if x < 0 || x >= nx || y < 0 || y >= ny {
            return;
        }
        let cell = (y * nx + x) as usize;
        scan_cell(store.cell_slices(cell), center, r2, k, &mut accept, best);
    };
    for ring in 0..=max_ring {
        // Nothing in ring `d` can be closer than (d-1)·min_side. The
        // break is strict, so rings that could still hold an equal
        // distance (smaller payload) are always visited — required for
        // the (distance, payload) order to be exact.
        let ring_lb = ((ring - 1).max(0) as f64) * min_side;
        let kth = best.last().map(|&(d, _)| d);
        if ring_lb > radius || (best.len() == k && kth.is_some_and(|d| ring_lb > d)) {
            break;
        }
        if ring == 0 {
            visit(cx, cy, best);
        } else {
            for dx in -ring..=ring {
                visit(cx + dx, cy - ring, best);
                visit(cx + dx, cy + ring, best);
            }
            for dy in (-ring + 1)..ring {
                visit(cx - ring, cy + dy, best);
                visit(cx + ring, cy + dy, best);
            }
        }
    }
}

/// One cell of the ring search: distance arithmetic over the SoA lanes,
/// then the prune → accept → ordered-insert tail for in-radius hits.
/// Generic over `accept` (monomorphized, so the predicate inlines into
/// the loop — this used to go through `&mut dyn FnMut`, one indirect
/// call per candidate).
#[inline]
fn scan_cell<T: Copy + Ord>(
    (xs, ys, ts): (&[f64], &[f64], &[T]),
    center: Point,
    r2: f64,
    k: usize,
    accept: &mut impl FnMut(f64, T) -> bool,
    best: &mut Vec<(f64, T)>,
) {
    // Same float sequence as `Point::euclidean_sq(p, center)` followed
    // by `.sqrt()` (= `Point::euclidean`), over SoA lanes: the pure
    // distance arithmetic vectorizes and only in-radius hits fall
    // through to the ordered insert.
    for i in 0..xs.len() {
        let dx = xs[i] - center.x;
        let dy = ys[i] - center.y;
        let d2 = dx * dx + dy * dy;
        if d2 <= r2 {
            let d = d2.sqrt();
            if prune(d, k, best) {
                continue;
            }
            if accept(d, ts[i]) {
                push(d, ts[i], k, best);
            }
        }
    }
}

/// Whether a candidate at distance `d` can be discarded without
/// consulting `accept`: once `best` holds `k` entries, anything
/// *strictly* farther than the current k-th cannot enter the result
/// under the `(distance, payload)` total order. Equal-distance
/// candidates still go through the insert (a smaller payload displaces
/// the k-th), and `accept` must be a pure predicate of `(d, payload)` —
/// the ring early-termination already skips it for whole pruned rings,
/// so its call pattern was never part of the contract.
#[inline]
fn prune<T: Copy>(d: f64, k: usize, best: &[(f64, T)]) -> bool {
    best.len() == k && best.last().is_some_and(|&(kd, _)| d > kd)
}

/// Keeps `best` sorted ascending by (distance, payload) and capped at
/// k entries; inserting every non-pruned candidate yields the k
/// smallest under the total order regardless of visit order.
#[inline]
fn push<T: Copy + Ord>(d: f64, t: T, k: usize, best: &mut Vec<(f64, T)>) {
    let pos = best.partition_point(|&(bd, bt)| bd < d || (bd == d && bt <= t));
    best.insert(pos, (d, t));
    if best.len() > k {
        best.pop();
    }
}

/// A static bucket index over a set of points.
///
/// Generic over the payload `T` carried with each point (typically a task
/// or worker index). Build once per time period with [`BucketIndex::build`],
/// then issue [`BucketIndex::within_disc`] queries.
#[derive(Debug, Clone)]
pub struct BucketIndex<T> {
    grid: GridSpec,
    /// CSR layout: `starts[c]..starts[c+1]` indexes the SoA arrays for
    /// cell `c`.
    starts: Vec<u32>,
    /// X coordinates, SoA lane parallel to `ys` / `payloads`.
    xs: Vec<f64>,
    /// Y coordinates.
    ys: Vec<f64>,
    /// Payloads.
    payloads: Vec<T>,
    /// Whether any indexed point lies outside the grid region (disables
    /// the ring-search early termination of `k_nearest_within`).
    any_outside: bool,
}

impl<T: Copy> BucketIndex<T> {
    /// Builds an index over `items`, bucketing by a grid sized so that the
    /// average bucket holds a handful of points (heuristic `√n × √n`,
    /// clamped to ≤ 256 per side).
    pub fn build(region: Rect, items: &[(Point, T)]) -> Self {
        let n = items.len().max(1);
        let side = ((n as f64).sqrt().ceil() as u32).clamp(1, 256);
        Self::build_with_grid(GridSpec::new(region, side, side), items)
    }

    /// Builds an index bucketed by an explicit grid. Points outside the
    /// grid's region are clamped into boundary cells (consistent with
    /// [`GridSpec::cell_of`]); the query still checks exact distances, so
    /// clamping never produces false positives.
    pub fn build_with_grid(grid: GridSpec, items: &[(Point, T)]) -> Self {
        let cells = grid.num_cells();
        // Counting sort into CSR buckets: one pass to count, one to place.
        let mut starts = vec![0u32; cells + 1];
        for &(p, _) in items {
            starts[grid.cell_of(p).index() + 1] += 1;
        }
        for c in 0..cells {
            starts[c + 1] += starts[c];
        }
        let mut cursor = starts.clone();
        // Place via a permutation so the SoA lanes are written exactly once.
        let mut order = vec![0u32; items.len()];
        for (i, &(p, _)) in items.iter().enumerate() {
            let c = grid.cell_of(p).index();
            order[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        let mut xs = Vec::with_capacity(items.len());
        let mut ys = Vec::with_capacity(items.len());
        let mut payloads = Vec::with_capacity(items.len());
        for i in order {
            let (p, t) = items[i as usize];
            xs.push(p.x);
            ys.push(p.y);
            payloads.push(t);
        }
        let region = grid.region();
        let any_outside = items.iter().any(|&(p, _)| !region.contains(p));
        Self {
            grid,
            starts,
            xs,
            ys,
            payloads,
            any_outside,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Calls `f(point, payload)` for every indexed point within the closed
    /// disc of `radius` around `center`.
    pub fn for_each_within_disc(&self, center: Point, radius: f64, f: impl FnMut(Point, T)) {
        for_each_within_disc_impl(self, center, radius, f);
    }

    /// Collects all payloads within the closed disc around `center`.
    pub fn within_disc(&self, center: Point, radius: f64) -> Vec<T> {
        let mut out = Vec::new();
        self.for_each_within_disc(center, radius, |_, t| out.push(t));
        out
    }
}

impl<T: Copy + Ord> BucketIndex<T> {
    /// The `k` nearest qualifying points within `radius` of `center`,
    /// sorted ascending by `(distance, payload)`. `accept(distance,
    /// payload)` lets the caller impose extra constraints (e.g. a
    /// per-worker range limit).
    ///
    /// Equal distances are broken by the smaller payload, which makes the
    /// result a pure function of the *point set* — independent of the
    /// bucketing grid and of insertion order. This is what lets the
    /// incremental [`crate::DynamicBucketIndex`] (whose grid is fixed at
    /// creation) reproduce a fresh build's capped-graph queries
    /// bit-for-bit.
    ///
    /// Buckets are visited in concentric Chebyshev rings around the
    /// centre cell and the search stops as soon as the next ring cannot
    /// contain anything closer than the current `k`-th candidate — with
    /// densely packed points this touches `O(k)` entries instead of the
    /// whole disc, which is what keeps the 500k-worker scalability
    /// experiment tractable.
    ///
    /// Correct early termination requires the indexed points to lie
    /// inside the index region (out-of-region points are clamped into
    /// boundary buckets, breaking the ring lower bound); when any indexed
    /// point was outside, this method transparently falls back to a full
    /// disc scan.
    pub fn k_nearest_within(
        &self,
        center: Point,
        radius: f64,
        k: usize,
        accept: impl FnMut(f64, T) -> bool,
    ) -> Vec<(f64, T)> {
        k_nearest_within_impl(self, center, radius, k, accept)
    }
}

impl<T: Copy> BucketStore<T> for BucketIndex<T> {
    fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn any_outside(&self) -> bool {
        self.any_outside
    }

    fn cell_slices(&self, cell: usize) -> (&[f64], &[f64], &[T]) {
        let lo = self.starts[cell] as usize;
        let hi = self.starts[cell + 1] as usize;
        (&self.xs[lo..hi], &self.ys[lo..hi], &self.payloads[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(items: &[(Point, usize)], c: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(p, _)| p.euclidean_sq(c) <= r * r)
            .map(|&(_, t)| t)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let idx: BucketIndex<usize> = BucketIndex::build(Rect::square(10.0), &[]);
        assert!(idx.is_empty());
        assert_eq!(
            idx.within_disc(Point::new(5.0, 5.0), 100.0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn single_point() {
        let items = [(Point::new(3.0, 3.0), 7usize)];
        let idx = BucketIndex::build(Rect::square(10.0), &items);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within_disc(Point::new(3.0, 4.0), 1.0), vec![7]);
        assert_eq!(
            idx.within_disc(Point::new(3.0, 4.5), 1.0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn matches_brute_force_on_lattice() {
        let mut items = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                items.push((Point::new(i as f64 * 0.5, j as f64 * 0.5), items.len()));
            }
        }
        let idx = BucketIndex::build(Rect::square(10.0), &items);
        for &(c, r) in &[
            (Point::new(5.0, 5.0), 2.5),
            (Point::new(0.0, 0.0), 1.0),
            (Point::new(9.9, 9.9), 3.0),
            (Point::new(5.0, 5.0), 0.0),
            (Point::new(-2.0, 5.0), 4.0), // centre outside the region
        ] {
            let mut got = idx.within_disc(c, r);
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, c, r), "query c={c:?} r={r}");
        }
    }

    #[test]
    fn points_outside_region_are_still_found() {
        // Clamped bucketing must not lose points that lie outside the
        // nominal region (workers can drift out when relocating).
        let items = [(Point::new(12.0, 12.0), 1usize), (Point::new(5.0, 5.0), 2)];
        let idx = BucketIndex::build(Rect::square(10.0), &items);
        assert_eq!(idx.within_disc(Point::new(12.0, 12.0), 0.5), vec![1]);
        // and a big disc finds both
        let mut all = idx.within_disc(Point::new(8.0, 8.0), 10.0);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let mut items = Vec::new();
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..500 {
            items.push((Point::new(next() * 100.0, next() * 100.0), i));
        }
        let idx = BucketIndex::build(Rect::square(100.0), &items);
        for &(c, r, k) in &[
            (Point::new(50.0, 50.0), 20.0, 8usize),
            (Point::new(0.0, 0.0), 15.0, 5),
            (Point::new(99.0, 3.0), 50.0, 1),
            (Point::new(50.0, 50.0), 5.0, 100), // fewer than k in range
            (Point::new(50.0, 50.0), 0.0, 3),
        ] {
            let got = idx.k_nearest_within(c, r, k, |_, _| true);
            let mut want: Vec<(f64, usize)> = items
                .iter()
                .filter(|(p, _)| p.euclidean(c) <= r)
                .map(|&(p, t)| (p.euclidean(c), t))
                .collect();
            want.sort_by(|a, b| a.0.total_cmp(&b.0));
            want.truncate(k);
            assert_eq!(got.len(), want.len(), "c={c:?} r={r} k={k}");
            for ((gd, gt), (wd, wt)) in got.iter().zip(&want) {
                assert!((gd - wd).abs() < 1e-12, "c={c:?} r={r} k={k}");
                assert_eq!(gt, wt, "c={c:?} r={r} k={k}");
            }
        }
    }

    #[test]
    fn k_nearest_respects_accept_filter() {
        let items = [
            (Point::new(1.0, 0.0), 0usize),
            (Point::new(2.0, 0.0), 1),
            (Point::new(3.0, 0.0), 2),
        ];
        let idx = BucketIndex::build(Rect::square(10.0), &items);
        // Reject the nearest point: the other two must be returned.
        let got = idx.k_nearest_within(Point::ORIGIN, 10.0, 2, |_, t| t != 0);
        let ids: Vec<usize> = got.iter().map(|&(_, t)| t).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn k_nearest_zero_k() {
        let items = [(Point::new(1.0, 1.0), 0usize)];
        let idx = BucketIndex::build(Rect::square(10.0), &items);
        assert!(idx
            .k_nearest_within(Point::ORIGIN, 10.0, 0, |_, _| true)
            .is_empty());
    }

    #[test]
    fn k_nearest_with_outside_points_falls_back() {
        // One point outside the region: results must still be exact.
        let items = [
            (Point::new(12.0, 12.0), 0usize),
            (Point::new(9.0, 9.0), 1),
            (Point::new(1.0, 1.0), 2),
        ];
        let idx = BucketIndex::build(Rect::square(10.0), &items);
        let got = idx.k_nearest_within(Point::new(11.0, 11.0), 5.0, 2, |_, _| true);
        let ids: Vec<usize> = got.iter().map(|&(_, t)| t).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn explicit_grid_build() {
        let grid = GridSpec::square(Rect::square(8.0), 4);
        let items = [
            (Point::new(1.0, 5.0), 0usize), // r2's origin
            (Point::new(5.0, 5.0), 1),      // r3's origin
        ];
        let idx = BucketIndex::build_with_grid(grid, &items);
        // w1 at (3,5) radius 2.5 reaches both (running example).
        let mut got = idx.within_disc(Point::new(3.0, 5.0), 2.5);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        // w2 at (7,5) reaches only r3.
        assert_eq!(idx.within_disc(Point::new(7.0, 5.0), 2.5), vec![1]);
    }
}
