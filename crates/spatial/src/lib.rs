//! # maps-spatial
//!
//! Spatial substrate for the MAPS reproduction (Tong et al., SIGMOD 2018):
//! planar geometry, rectangular grid partitioning of the region of interest
//! (Definition 1 in the paper), and a bucketed spatial index used to build
//! the task–worker bipartite graph under the range constraint
//! (Definition 4) in output-sensitive time.
//!
//! The paper works on a `100 × 100` square for synthetic data and a
//! longitude/latitude rectangle mapped to kilometres for the Beijing data;
//! both are expressed here as a [`Rect`] partitioned by a [`GridSpec`].
//!
//! ## Quick example
//!
//! ```
//! use maps_spatial::{Point, Rect, GridSpec};
//!
//! // Example 2 of the paper: 8×8 region, grid side 2 → 4×4 = 16 grids,
//! // indexed from the bottom-left.
//! let region = Rect::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0));
//! let grid = GridSpec::new(region, 4, 4);
//! let w3 = Point::new(5.0, 3.0);
//! assert_eq!(grid.cell_of(w3).index(), 6); // grid 7 with 1-based paper ids
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dynamic;
pub mod geom;
pub mod grid;
pub mod index;
pub mod shard;

pub use dynamic::DynamicBucketIndex;
pub use geom::{Circle, DistanceMetric, Point, Rect};
pub use grid::{CellId, GridSpec};
pub use index::BucketIndex;
pub use shard::ShardMap;
