//! Deterministic grid-cell → shard routing for the sharded online
//! pricing service.
//!
//! A [`ShardMap`] partitions the cells of a [`GridSpec`] into
//! `num_shards` disjoint ownership sets by round-robin over the cell
//! index. The assignment is a pure function of `(cell, num_shards)` —
//! no hashing, no registration order — so two services configured with
//! the same shard count route every event identically, and the
//! shard-count-invariance contract (replay outcomes are bit-identical
//! at 1/2/4/8 shards) only has to reason about *merge order*, never
//! about routing.
//!
//! Round-robin (rather than contiguous ranges) spreads spatially
//! adjacent cells across shards, which keeps per-shard load balanced
//! when demand is concentrated in a hotspot — the common shape of the
//! paper's Beijing workload.

use crate::grid::CellId;

/// Deterministic round-robin assignment of grid cells to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    num_shards: usize,
}

impl ShardMap {
    /// A map routing cells onto `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        Self { num_shards }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `cell`.
    #[inline]
    pub fn shard_of(&self, cell: CellId) -> usize {
        cell.index() % self.num_shards
    }

    /// The cells (out of `num_cells`) owned by `shard`, ascending.
    pub fn cells_of(&self, shard: usize, num_cells: usize) -> impl Iterator<Item = CellId> + '_ {
        assert!(shard < self.num_shards, "shard {shard} out of range");
        (shard..num_cells)
            .step_by(self.num_shards)
            .map(|i| CellId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_a_partition() {
        let num_cells = 40;
        for shards in [1usize, 2, 3, 4, 8, 64] {
            let map = ShardMap::new(shards);
            let mut owner = vec![usize::MAX; num_cells];
            for s in 0..shards {
                for cell in map.cells_of(s, num_cells) {
                    assert_eq!(owner[cell.index()], usize::MAX, "cell owned twice");
                    owner[cell.index()] = s;
                    assert_eq!(map.shard_of(cell), s);
                }
            }
            assert!(owner.iter().all(|&s| s < shards), "unowned cell");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        for i in 0..16u32 {
            assert_eq!(map.shard_of(CellId(i)), 0);
        }
        assert_eq!(map.cells_of(0, 16).count(), 16);
    }

    #[test]
    fn more_shards_than_cells_leaves_some_empty() {
        let map = ShardMap::new(8);
        assert_eq!(map.cells_of(5, 4).count(), 0);
        assert_eq!(map.cells_of(2, 4).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0);
    }
}
