//! # maps-telemetry
//!
//! Deterministic, allocation-free latency telemetry for the MAPS
//! pipeline: fixed-bucket **log2 histograms** whose state is a pure
//! function of the admitted event stream — never of wall-clock time,
//! thread count, shard count, or producer interleaving.
//!
//! Production latency telemetry is usually wall-clock based and
//! therefore excluded from replay contracts (like `pricing_secs` in
//! `maps_simulator::Outcome`). The histograms here instead measure
//! latency in **event-time ticks**: positions in the canonical replay
//! order (`[workers…, tasks…, PeriodTick]` per period). That makes the
//! counters bit-identical between the batch simulator, the sharded
//! service at any shard/thread count, and every ingestion interleaving
//! — so they *can* ride inside `Outcome::deterministic_bits` and get
//! the same replay/recovery oracle coverage as revenue itself.
//!
//! Recording is O(1) per observation (one `leading_zeros` and one
//! array increment), merging is O(buckets), and quantile estimation is
//! integer-only, so the same inputs yield the same p50/p99/p999 on any
//! host.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Number of buckets: bucket `b` counts values with exactly `b`
/// significant bits (`b = 0` holds only the value `0`; `b = 64` holds
/// `[2^63, u64::MAX]`).
pub const BUCKETS: usize = 65;

/// A fixed-size base-2 exponential histogram over `u64` observations.
///
/// Bucket `b` counts observations whose value has exactly `b`
/// significant bits, i.e. lies in `[2^(b-1), 2^b - 1]` (bucket 0 is the
/// exact value `0`). Relative value error of a bucket's upper bound is
/// < 2×, which is the usual precision for latency distributions while
/// keeping `record` branch-free and the state POD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// Bucket index for `value`: its significant-bit count.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation. O(1), no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
    }

    /// Records `n` identical observations at once.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[Self::bucket_of(value)] += n;
        self.total += n;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Raw per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Folds `other` into `self` bucket-wise. Merging per-shard
    /// histograms in any order yields the same state (addition is
    /// commutative on `u64` counts).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Inclusive upper bound of bucket `b` (`0` for bucket 0,
    /// `2^b − 1` otherwise) — the histogram's representative value for
    /// observations in that bucket.
    pub fn bucket_upper_bound(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// The bucket upper bound at quantile `numerator/denominator`,
    /// computed with integer arithmetic only: the value `v` such that
    /// at least `ceil(total · num / den)` observations are `≤ v`'s
    /// bucket. Returns `0` for an empty histogram.
    ///
    /// Integer-only on purpose: a float quantile rank could round
    /// differently across hosts; this cannot.
    pub fn quantile_upper_bound(&self, numerator: u64, denominator: u64) -> u64 {
        assert!(denominator > 0, "quantile denominator must be positive");
        assert!(numerator <= denominator, "quantile above 1.0");
        if self.total == 0 {
            return 0;
        }
        // ceil(total * num / den) without overflow for realistic totals:
        // total ≤ 2^63 / den is ample for event counters.
        let rank = self.total.saturating_mul(numerator).div_ceil(denominator);
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(b);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// Median upper bound (p50).
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(1, 2)
    }

    /// 99th percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(99, 100)
    }

    /// 99.9th percentile upper bound.
    pub fn p999(&self) -> u64 {
        self.quantile_upper_bound(999, 1000)
    }

    /// Appends the exact histogram state as `u64` words (bucket counts,
    /// then the total) — the encoding used both by
    /// `Outcome::deterministic_bits` and by service checkpoints.
    pub fn extend_words(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.counts);
        out.push(self.total);
    }

    /// Number of words [`Log2Histogram::extend_words`] appends.
    pub const WORDS: usize = BUCKETS + 1;

    /// Rebuilds a histogram from [`Log2Histogram::extend_words`]
    /// output. Returns `None` if the slice is too short or internally
    /// inconsistent (total ≠ sum of buckets).
    pub fn from_words(words: &[u64]) -> Option<Log2Histogram> {
        if words.len() < Self::WORDS {
            return None;
        }
        let mut counts = [0u64; BUCKETS];
        counts.copy_from_slice(&words[..BUCKETS]);
        let total = words[BUCKETS];
        if counts.iter().copied().fold(0u64, u64::wrapping_add) != total {
            return None;
        }
        Some(Log2Histogram { counts, total })
    }
}

/// The latency telemetry block carried by a simulation/service
/// `Outcome`: three log2 histograms, all measured in **event-time**
/// (positions in the canonical replay order), never wall-clock.
///
/// All three are pure functions of per-period quantities that every
/// engine — batch scan, batch incremental, the sharded tick reducer at
/// any shard/thread count, and every ingestion interleaving — computes
/// identically under the existing replay contract, which is what
/// licenses their inclusion in `deterministic_bits`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyTelemetry {
    /// Admission→priced latency per task, in event-time ticks: the
    /// `j`-th task (0-based, canonical order) of a window that issued
    /// `R` tasks sits `R − j` stream events before the tick that prices
    /// it. Live interleavings may deliver events in another order; the
    /// histogram is defined over the canonical order so it stays
    /// interleaving-invariant.
    pub task_wait: Log2Histogram,
    /// Tasks queued at each tick (`R` per period) — the pricing queue
    /// depth the tick reducer drains.
    pub queue_depth: Log2Histogram,
    /// Live workers at each pricing instant (per period, after churn).
    pub worker_pool: Log2Histogram,
}

impl LatencyTelemetry {
    /// An empty block.
    pub const fn new() -> Self {
        Self {
            task_wait: Log2Histogram::new(),
            queue_depth: Log2Histogram::new(),
            worker_pool: Log2Histogram::new(),
        }
    }

    /// Records one settled period: `issued` tasks priced at this tick
    /// over a pool of `live_workers`. This is the single recording
    /// primitive shared by the batch loop and the service reducer, so
    /// the op sequence — and the resulting bits — agree by
    /// construction.
    pub fn record_period(&mut self, issued: u64, live_workers: u64) {
        // task j of 0..R waits R − j events; the multiset {1..=R} is
        // bucketed in O(buckets) rather than O(R): values sharing a
        // significant-bit count form contiguous runs.
        let mut lo = 1u64;
        while lo <= issued {
            let b = Log2Histogram::bucket_of(lo);
            let hi = Log2Histogram::bucket_upper_bound(b).min(issued);
            self.task_wait.record_n(hi, hi - lo + 1);
            if hi == u64::MAX {
                break;
            }
            lo = hi + 1;
        }
        self.queue_depth.record(issued);
        self.worker_pool.record(live_workers);
    }

    /// Folds another block into this one (e.g. merging recovered-run
    /// segments). Order-independent.
    pub fn merge(&mut self, other: &LatencyTelemetry) {
        self.task_wait.merge(&other.task_wait);
        self.queue_depth.merge(&other.queue_depth);
        self.worker_pool.merge(&other.worker_pool);
    }

    /// Appends the exact state as `u64` words (three histograms in
    /// field order).
    pub fn extend_words(&self, out: &mut Vec<u64>) {
        self.task_wait.extend_words(out);
        self.queue_depth.extend_words(out);
        self.worker_pool.extend_words(out);
    }

    /// Number of words [`LatencyTelemetry::extend_words`] appends.
    pub const WORDS: usize = 3 * Log2Histogram::WORDS;

    /// Rebuilds a block from [`LatencyTelemetry::extend_words`] output.
    pub fn from_words(words: &[u64]) -> Option<LatencyTelemetry> {
        if words.len() < Self::WORDS {
            return None;
        }
        let w = Log2Histogram::WORDS;
        Some(LatencyTelemetry {
            task_wait: Log2Histogram::from_words(&words[..w])?,
            queue_depth: Log2Histogram::from_words(&words[w..2 * w])?,
            worker_pool: Log2Histogram::from_words(&words[2 * w..3 * w])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Log2Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Log2Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Log2Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Log2Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        // p50 rank is 500; buckets 0..=9 hold 0 + 1 + 2 + … + 256 = 512
        // observations, so the median lands in bucket 9 (values
        // 256..=511), upper bound 511.
        assert_eq!(h.p50(), 511);
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.quantile_upper_bound(1, 1000), 0);
        let empty = Log2Histogram::new();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p999(), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [1u64, 5, 5, 100, 0] {
            a.record(v);
        }
        for v in [7u64, 7, 2, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 9);
    }

    #[test]
    fn words_roundtrip() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 3, 3, 9, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let mut words = Vec::new();
        h.extend_words(&mut words);
        assert_eq!(words.len(), Log2Histogram::WORDS);
        assert_eq!(Log2Histogram::from_words(&words), Some(h));
        // Corrupted total is rejected.
        let mut bad = words.clone();
        bad[BUCKETS] += 1;
        assert_eq!(Log2Histogram::from_words(&bad), None);
        assert_eq!(Log2Histogram::from_words(&words[..10]), None);
    }

    #[test]
    fn record_period_matches_naive_loop() {
        for issued in [0u64, 1, 2, 3, 7, 8, 100, 1000] {
            let mut fast = LatencyTelemetry::new();
            fast.record_period(issued, 42);
            let mut naive = Log2Histogram::new();
            for j in 0..issued {
                naive.record(issued - j);
            }
            assert_eq!(
                fast.task_wait, naive,
                "run-compressed task_wait differs at R={issued}"
            );
            assert_eq!(fast.queue_depth.count(), 1);
            assert_eq!(fast.worker_pool.count(), 1);
        }
    }

    #[test]
    fn telemetry_words_roundtrip() {
        let mut t = LatencyTelemetry::new();
        t.record_period(17, 300);
        t.record_period(0, 299);
        t.record_period(900, 512);
        let mut words = Vec::new();
        t.extend_words(&mut words);
        assert_eq!(words.len(), LatencyTelemetry::WORDS);
        assert_eq!(LatencyTelemetry::from_words(&words), Some(t));
    }

    #[test]
    fn telemetry_merge_order_independent() {
        let mut a = LatencyTelemetry::new();
        a.record_period(10, 100);
        let mut b = LatencyTelemetry::new();
        b.record_period(20, 90);
        b.record_period(0, 90);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
