//! # maps-testkit
//!
//! Cross-crate test support for the workspace's determinism contract:
//! every rayon-parallel kernel (Monte-Carlo revenue estimation, the
//! per-grid MAPS pricing tables, the seed-parallel experiment runner)
//! must produce **bit-identical** output at any thread count.
//!
//! The harness has two halves:
//!
//! * [`BitPattern`] — a canonical bit-level encoding of a result value.
//!   Floats are compared through [`f64::to_bits`], so `0.0 != -0.0` and
//!   two NaNs with different payloads differ: if a parallel schedule
//!   changes even the rounding of one float, the harness sees it.
//! * [`assert_deterministic`] / [`assert_deterministic_across`] — run a
//!   closure under rayon pools of 1/2/3/8 threads (or a caller-chosen
//!   set) and assert that every run's bit pattern equals the 1-thread
//!   baseline.
//!
//! Used by `maps-core` (pricing + Monte-Carlo), `maps-experiments`
//! (seed-parallel runner) and `maps-simulator` (whole-simulation runs).

#![warn(missing_docs)]

use std::fmt::Debug;

/// Thread counts exercised by [`assert_deterministic`]: the serial
/// baseline, both parities, and an oversubscribed pool (8 threads on a
/// 1-CPU host still reorders chunk scheduling).
pub const DEFAULT_THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Shard counts the sharded-service replay oracle sweeps (PR 4's
/// shard-count-invariance contract): the single-shard degenerate case,
/// powers of two up to more shards than most test grids have non-empty
/// cells. Service outcomes must be bit-identical across all of them
/// *and* to the batch simulator.
pub const DEFAULT_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic xorshift64 for test fixtures and churn scripts — one
/// shared generator so fixture distributions cannot silently diverge
/// between crates (no `rand` dependency needed in test hot paths).
#[derive(Debug, Clone)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Canonical bit-level encoding of a value, for exact comparison of
/// results that contain floats.
pub trait BitPattern {
    /// Appends this value's canonical encoding to `out`.
    ///
    /// Implementations must be injective enough that two values with
    /// equal encodings are observably identical (length prefixes guard
    /// nested containers against concatenation ambiguity).
    fn bit_pattern(&self, out: &mut Vec<u64>);

    /// This value's canonical encoding as an owned vector.
    fn bits(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.bit_pattern(&mut out);
        out
    }
}

impl BitPattern for f64 {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits());
    }
}

impl BitPattern for f32 {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits() as u64);
    }
}

macro_rules! impl_bitpattern_int {
    ($($t:ty),*) => {$(
        impl BitPattern for $t {
            fn bit_pattern(&self, out: &mut Vec<u64>) {
                out.push(*self as u64);
            }
        }
    )*};
}

impl_bitpattern_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl BitPattern for bool {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
}

impl BitPattern for String {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        self.as_str().bit_pattern(out);
    }
}

impl BitPattern for &str {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        for b in self.bytes() {
            out.push(b as u64);
        }
    }
}

impl<T: BitPattern> BitPattern for Option<T> {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.bit_pattern(out);
            }
        }
    }
}

impl<T: BitPattern> BitPattern for Vec<T> {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        self.as_slice().bit_pattern(out);
    }
}

impl<T: BitPattern> BitPattern for [T] {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        for v in self {
            v.bit_pattern(out);
        }
    }
}

impl<T: BitPattern + ?Sized> BitPattern for &T {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        (*self).bit_pattern(out);
    }
}

macro_rules! impl_bitpattern_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: BitPattern),+> BitPattern for ($($name,)+) {
            fn bit_pattern(&self, out: &mut Vec<u64>) {
                $(self.$idx.bit_pattern(out);)+
            }
        }
    };
}

impl_bitpattern_tuple!(A: 0);
impl_bitpattern_tuple!(A: 0, B: 1);
impl_bitpattern_tuple!(A: 0, B: 1, C: 2);
impl_bitpattern_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Runs `f` inside a rayon pool of `threads` threads and returns its
/// result. Convenience wrapper over `ThreadPoolBuilder… .install`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds")
        .install(f)
}

/// Runs `f` once under each thread count in `counts` and asserts every
/// result's [`BitPattern`] is identical to the first count's.
///
/// Returns the baseline result so callers can chain further checks
/// (e.g. compare the parallel family against a sequential oracle).
///
/// # Panics
/// Panics with both values' `Debug` rendering when any run diverges,
/// or when `counts` is empty.
pub fn assert_deterministic_across<T, F>(counts: &[usize], f: F) -> T
where
    T: BitPattern + Debug,
    F: Fn() -> T,
{
    assert!(!counts.is_empty(), "need at least one thread count");
    let baseline = with_threads(counts[0], &f);
    let expect = baseline.bits();
    for &threads in &counts[1..] {
        let got = with_threads(threads, &f);
        assert_eq!(
            expect,
            got.bits(),
            "result diverged at {threads} threads (baseline {} threads):\n\
             baseline: {baseline:?}\n\
             at {threads} threads: {got:?}",
            counts[0],
        );
    }
    baseline
}

/// [`assert_deterministic_across`] under the workspace's canonical
/// thread counts [`DEFAULT_THREAD_COUNTS`] (1/2/3/8).
pub fn assert_deterministic<T, F>(f: F) -> T
where
    T: BitPattern + Debug,
    F: Fn() -> T,
{
    assert_deterministic_across(&DEFAULT_THREAD_COUNTS, f)
}

/// Producer counts the ingestion interleaving oracle sweeps (PR 5's
/// interleaving-invariance contract): the single-producer degenerate
/// case and powers of two up to an oversubscribed producer set.
/// Multi-producer replay outcomes must be bit-identical across all of
/// them *and* to serial `push` (hence to the batch simulator).
pub const DEFAULT_PRODUCER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// How an [`Interleaver`] shapes the relative schedule of N producer
/// threads. The point of the ingestion contract is that the *outcome*
/// is invariant under every one of these; the plans exist so tests can
/// force schedules the OS would rarely produce on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleavePlan {
    /// No coordination: whatever the OS scheduler does.
    Free,
    /// Deterministically seeded per-step yield bursts: each step first
    /// spins through a pseudo-random number of `yield_now` calls drawn
    /// from a per-producer stream. Different seeds perturb the temporal
    /// interleaving differently. Never blocks a producer on another, so
    /// it is safe at **any** queue capacity.
    Staggered(u64),
    /// Deterministically seeded occasional *sleeps*: roughly one step
    /// in sixteen parks the producer for 100–500µs — long enough to
    /// drive every other party past its spin/yield budget onto the
    /// condvar, so the queue's park/wake slow paths (not just the
    /// lock-free fast paths) get exercised. Like
    /// [`InterleavePlan::Staggered`] it never blocks a producer on
    /// another, so it is safe at **any** queue capacity.
    Stutter(u64),
    /// Strict global round-robin: step k across all unfinished
    /// producers is taken by the next producer in cyclic id order, one
    /// step at a time.
    RoundRobin,
    /// Strictly descending producer batches: producer `i` runs only
    /// after producers `i+1..n` have finished entirely — the maximal
    /// inversion of the canonical merge order.
    ReverseBatches,
}

/// Test harness forcing a specific cross-thread interleaving of
/// producer "steps" (e.g. sends into a bounded ingestion queue).
///
/// Each of N producer threads wraps its unit of work in
/// [`Interleaver::step`] and calls [`Interleaver::finished`] when done,
/// so blocking plans can skip it. **Deadlock caveat**: the blocking
/// plans ([`InterleavePlan::RoundRobin`], [`InterleavePlan::ReverseBatches`])
/// hold producers back, so anything downstream consuming their output
/// in a fixed order (like the ingestion sequencer draining bounded
/// queues producer-by-producer) must have room to buffer the held-back
/// volume — size queues accordingly. [`InterleavePlan::Free`],
/// [`InterleavePlan::Staggered`] and [`InterleavePlan::Stutter`] never
/// block and are safe at any capacity.
#[derive(Debug)]
pub struct Interleaver {
    plan: InterleavePlan,
    state: std::sync::Mutex<InterleaveState>,
    cv: std::sync::Condvar,
}

#[derive(Debug)]
struct InterleaveState {
    /// Whose turn it is (`RoundRobin`).
    turn: usize,
    finished: Vec<bool>,
    /// Per-producer yield-burst streams (`Staggered`).
    rngs: Vec<XorShift>,
}

impl InterleaveState {
    /// Advances `turn` to the next unfinished producer after `from`
    /// (cyclically); leaves it in place when everyone is done.
    fn advance_turn(&mut self, from: usize) {
        let n = self.finished.len();
        for offset in 1..=n {
            let candidate = (from + offset) % n;
            if !self.finished[candidate] {
                self.turn = candidate;
                return;
            }
        }
    }
}

impl Interleaver {
    /// A harness for `producers` threads under `plan`.
    pub fn new(producers: usize, plan: InterleavePlan) -> Self {
        assert!(producers >= 1, "need at least one producer");
        let seed = match plan {
            InterleavePlan::Staggered(seed) | InterleavePlan::Stutter(seed) => seed,
            _ => 0,
        };
        Self {
            plan,
            state: std::sync::Mutex::new(InterleaveState {
                turn: 0,
                finished: vec![false; producers],
                rngs: (0..producers)
                    .map(|i| XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (i as u64 + 1)))
                    .collect(),
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Runs one unit of `producer`'s work under the plan's schedule.
    pub fn step<R>(&self, producer: usize, f: impl FnOnce() -> R) -> R {
        match self.plan {
            InterleavePlan::Free => f(),
            InterleavePlan::Staggered(_) => {
                let spins = {
                    let mut state = self.state.lock().expect("interleaver poisoned");
                    state.rngs[producer].next_u64() % 8
                };
                for _ in 0..spins {
                    std::thread::yield_now();
                }
                f()
            }
            InterleavePlan::Stutter(_) => {
                let draw = {
                    let mut state = self.state.lock().expect("interleaver poisoned");
                    state.rngs[producer].next_u64()
                };
                if draw % 16 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(100 + draw % 400));
                } else {
                    std::thread::yield_now();
                }
                f()
            }
            InterleavePlan::RoundRobin => {
                let mut state = self.state.lock().expect("interleaver poisoned");
                while state.turn != producer {
                    state = self.cv.wait(state).expect("interleaver poisoned");
                }
                let result = f();
                state.advance_turn(producer);
                drop(state);
                self.cv.notify_all();
                result
            }
            InterleavePlan::ReverseBatches => {
                let mut state = self.state.lock().expect("interleaver poisoned");
                while state.finished[producer + 1..].iter().any(|done| !done) {
                    state = self.cv.wait(state).expect("interleaver poisoned");
                }
                drop(state);
                f()
            }
        }
    }

    /// Marks `producer` done so blocking plans skip it from now on.
    pub fn finished(&self, producer: usize) {
        let mut state = self.state.lock().expect("interleaver poisoned");
        state.finished[producer] = true;
        if state.turn == producer {
            state.advance_turn(producer);
        }
        drop(state);
        self.cv.notify_all();
    }
}

/// One deterministic fault scenario drawn from a [`FaultPlan`].
///
/// The plan is pure data: it names *where* a crash-recovery test should
/// inject its fault (which producer dies, after how many events, which
/// journal bytes tear, which shard panics), and the test maps that onto
/// the service's public hooks (`IngressProducer::abandon`, truncating
/// the journal file, `ShardedService::inject_shard_fault`, a panicking
/// strategy wrapper). Keeping the plan seeded and service-agnostic
/// means every CI run exercises the same fault schedule bit-for-bit —
/// a failing seed is a reproducible bug report, not a flake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Producer `producer` dies mid-epoch `epoch` after sending
    /// `events_sent` of its events for that epoch (so it never votes
    /// for the epoch barrier). A supervisor later reconnects the lane
    /// at the service's acked watermark.
    ProducerKill {
        /// Lane of the victim.
        producer: u32,
        /// Epoch the victim dies in.
        epoch: u32,
        /// Events of that epoch the victim managed to send first.
        events_sent: u32,
    },
    /// The sequencer/service process dies right after epoch `epoch`'s
    /// barrier tick becomes durable — the crash-at-epoch-boundary case.
    SequencerDeath {
        /// Last epoch whose tick completed before the crash.
        epoch: u32,
    },
    /// The crash tears the final journal frame: `bytes` trailing bytes
    /// of the file are lost (never a whole frame — the point is an
    /// *invalid* trailing frame that recovery must truncate).
    TornTail {
        /// Epoch in whose tail the torn write happens.
        epoch: u32,
        /// Trailing bytes chopped off the journal file.
        bytes: u32,
    },
    /// Shard `shard` panics inside the parallel tick closing `epoch`,
    /// poisoning the service (typed error), which is then recovered
    /// from the journal.
    ShardPanic {
        /// Shard whose closure panics.
        shard: u32,
        /// Epoch whose tick is poisoned.
        epoch: u32,
    },
}

/// Seeded generator of [`Fault`] scenarios over a fixed topology
/// (`producers` lanes × `shards` shards × `epochs` periods).
///
/// Draws cycle through the four fault kinds so any non-trivial draw
/// count covers every kind, while the victims/offsets walk a
/// deterministic [`XorShift`] stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: XorShift,
    producers: u32,
    shards: u32,
    epochs: u32,
    draws: u32,
}

impl FaultPlan {
    /// A plan for the given topology. `producers`, `shards` and
    /// `epochs` must all be ≥ 1.
    pub fn new(seed: u64, producers: u32, shards: u32, epochs: u32) -> Self {
        assert!(producers >= 1 && shards >= 1 && epochs >= 1);
        Self {
            // Avoid the all-zero xorshift fixed point.
            rng: XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            producers,
            shards,
            epochs,
            draws: 0,
        }
    }

    /// Draws the next fault scenario.
    pub fn next_fault(&mut self) -> Fault {
        let kind = self.draws % 4;
        self.draws += 1;
        let epoch = (self.rng.next_u64() % u64::from(self.epochs)) as u32;
        match kind {
            0 => Fault::ProducerKill {
                producer: (self.rng.next_u64() % u64::from(self.producers)) as u32,
                epoch,
                events_sent: (self.rng.next_u64() % 4) as u32,
            },
            1 => Fault::SequencerDeath { epoch },
            2 => Fault::TornTail {
                epoch,
                bytes: 1 + (self.rng.next_u64() % 16) as u32,
            },
            _ => Fault::ShardPanic {
                shard: (self.rng.next_u64() % u64::from(self.shards)) as u32,
                epoch,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn floats_compare_bitwise() {
        assert_ne!(0.0f64.bits(), (-0.0f64).bits());
        assert_eq!(1.5f64.bits(), 1.5f64.bits());
        let quiet = f64::NAN;
        assert_eq!(quiet.bits(), quiet.bits(), "same NaN payload is equal");
    }

    #[test]
    fn containers_are_length_prefixed() {
        // Without prefixes [[1],[2]] and [[1,2]] would collide.
        let a: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let b: Vec<Vec<u64>> = vec![vec![1, 2]];
        assert_ne!(a.bits(), b.bits());
        let s1 = ("ab", 1u32);
        let s2 = ("a", 98u32); // 'b' == 98
        assert_ne!(s1.bits(), s2.bits());
    }

    #[test]
    fn option_disambiguates() {
        assert_ne!(Some(0u64).bits(), None::<u64>.bits());
    }

    #[test]
    fn deterministic_parallel_sum_passes() {
        // Ordered collect + sequential reduction: bit-stable by design.
        let result = assert_deterministic(|| {
            let parts: Vec<f64> = (0..1000usize)
                .into_par_iter()
                .map(|i| (i as f64).sqrt())
                .collect();
            parts.iter().sum::<f64>()
        });
        assert!(result > 0.0);
    }

    #[test]
    fn with_threads_overrides_pool_size() {
        assert_eq!(with_threads(3, rayon::current_num_threads), 3);
    }

    #[test]
    #[should_panic(expected = "diverged at")]
    fn thread_dependent_result_is_caught() {
        assert_deterministic(rayon::current_num_threads);
    }

    /// Runs `steps_per_producer` steps on each of `n` threads under
    /// `plan`, recording the global step order as `(producer, step)`.
    fn record_schedule(
        n: usize,
        steps_per_producer: usize,
        plan: InterleavePlan,
    ) -> Vec<(usize, usize)> {
        let interleaver = Interleaver::new(n, plan);
        let log = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for producer in 0..n {
                let interleaver = &interleaver;
                let log = &log;
                scope.spawn(move || {
                    for step in 0..steps_per_producer {
                        interleaver.step(producer, || {
                            log.lock().unwrap().push((producer, step));
                        });
                    }
                    interleaver.finished(producer);
                });
            }
        });
        log.into_inner().unwrap()
    }

    #[test]
    fn round_robin_serializes_in_cyclic_order() {
        let order = record_schedule(3, 4, InterleavePlan::RoundRobin);
        assert_eq!(order.len(), 12);
        // Step k is taken by producer k mod 3, in its own step order.
        for (k, &(producer, step)) in order.iter().enumerate() {
            assert_eq!(producer, k % 3, "global step {k}");
            assert_eq!(step, k / 3, "global step {k}");
        }
    }

    #[test]
    fn reverse_batches_run_descending() {
        let order = record_schedule(3, 3, InterleavePlan::ReverseBatches);
        let producers: Vec<usize> = order.iter().map(|&(p, _)| p).collect();
        assert_eq!(producers, vec![2, 2, 2, 1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn round_robin_skips_finished_producers() {
        // Producer 1 takes fewer steps; the rotation must not stall on
        // it once it is finished.
        let interleaver = Interleaver::new(2, InterleavePlan::RoundRobin);
        let log = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let (il, log) = (&interleaver, &log);
            scope.spawn(move || {
                for step in 0..4 {
                    il.step(0, || log.lock().unwrap().push((0usize, step)));
                }
                il.finished(0);
            });
            scope.spawn(move || {
                il.step(1, || log.lock().unwrap().push((1usize, 0)));
                il.finished(1);
            });
        });
        let order = log.into_inner().unwrap();
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], (0, 0));
        assert_eq!(order[1], (1, 0));
        assert_eq!(&order[2..], &[(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn fault_plan_is_deterministic_and_covers_every_kind() {
        let draw = |seed: u64| {
            let mut plan = FaultPlan::new(seed, 4, 8, 8);
            (0..8).map(|_| plan.next_fault()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42), "same seed, same schedule");
        assert_ne!(draw(42), draw(43), "different seeds differ");
        let faults = draw(7);
        assert!(faults
            .iter()
            .any(|f| matches!(f, Fault::ProducerKill { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, Fault::SequencerDeath { .. })));
        assert!(faults.iter().any(|f| matches!(f, Fault::TornTail { .. })));
        assert!(faults.iter().any(|f| matches!(f, Fault::ShardPanic { .. })));
        for f in &faults {
            match *f {
                Fault::ProducerKill {
                    producer,
                    epoch,
                    events_sent,
                } => {
                    assert!(producer < 4 && epoch < 8 && events_sent < 4);
                }
                Fault::SequencerDeath { epoch } => assert!(epoch < 8),
                Fault::TornTail { epoch, bytes } => {
                    assert!(epoch < 8 && (1..=16).contains(&bytes));
                }
                Fault::ShardPanic { shard, epoch } => assert!(shard < 8 && epoch < 8),
            }
        }
    }

    #[test]
    fn uncoordinated_plans_complete_without_blocking() {
        for plan in [
            InterleavePlan::Free,
            InterleavePlan::Staggered(7),
            InterleavePlan::Stutter(7),
        ] {
            let order = record_schedule(4, 5, plan);
            assert_eq!(order.len(), 20, "{plan:?}");
            for producer in 0..4 {
                let steps: Vec<usize> = order
                    .iter()
                    .filter(|&&(p, _)| p == producer)
                    .map(|&(_, s)| s)
                    .collect();
                assert_eq!(steps, vec![0, 1, 2, 3, 4], "{plan:?}");
            }
        }
    }
}
