//! # maps-testkit
//!
//! Cross-crate test support for the workspace's determinism contract:
//! every rayon-parallel kernel (Monte-Carlo revenue estimation, the
//! per-grid MAPS pricing tables, the seed-parallel experiment runner)
//! must produce **bit-identical** output at any thread count.
//!
//! The harness has two halves:
//!
//! * [`BitPattern`] — a canonical bit-level encoding of a result value.
//!   Floats are compared through [`f64::to_bits`], so `0.0 != -0.0` and
//!   two NaNs with different payloads differ: if a parallel schedule
//!   changes even the rounding of one float, the harness sees it.
//! * [`assert_deterministic`] / [`assert_deterministic_across`] — run a
//!   closure under rayon pools of 1/2/3/8 threads (or a caller-chosen
//!   set) and assert that every run's bit pattern equals the 1-thread
//!   baseline.
//!
//! Used by `maps-core` (pricing + Monte-Carlo), `maps-experiments`
//! (seed-parallel runner) and `maps-simulator` (whole-simulation runs).

#![warn(missing_docs)]

use std::fmt::Debug;

/// Thread counts exercised by [`assert_deterministic`]: the serial
/// baseline, both parities, and an oversubscribed pool (8 threads on a
/// 1-CPU host still reorders chunk scheduling).
pub const DEFAULT_THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Shard counts the sharded-service replay oracle sweeps (PR 4's
/// shard-count-invariance contract): the single-shard degenerate case,
/// powers of two up to more shards than most test grids have non-empty
/// cells. Service outcomes must be bit-identical across all of them
/// *and* to the batch simulator.
pub const DEFAULT_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic xorshift64 for test fixtures and churn scripts — one
/// shared generator so fixture distributions cannot silently diverge
/// between crates (no `rand` dependency needed in test hot paths).
#[derive(Debug, Clone)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Canonical bit-level encoding of a value, for exact comparison of
/// results that contain floats.
pub trait BitPattern {
    /// Appends this value's canonical encoding to `out`.
    ///
    /// Implementations must be injective enough that two values with
    /// equal encodings are observably identical (length prefixes guard
    /// nested containers against concatenation ambiguity).
    fn bit_pattern(&self, out: &mut Vec<u64>);

    /// This value's canonical encoding as an owned vector.
    fn bits(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.bit_pattern(&mut out);
        out
    }
}

impl BitPattern for f64 {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits());
    }
}

impl BitPattern for f32 {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits() as u64);
    }
}

macro_rules! impl_bitpattern_int {
    ($($t:ty),*) => {$(
        impl BitPattern for $t {
            fn bit_pattern(&self, out: &mut Vec<u64>) {
                out.push(*self as u64);
            }
        }
    )*};
}

impl_bitpattern_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl BitPattern for bool {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
}

impl BitPattern for String {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        self.as_str().bit_pattern(out);
    }
}

impl BitPattern for &str {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        for b in self.bytes() {
            out.push(b as u64);
        }
    }
}

impl<T: BitPattern> BitPattern for Option<T> {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.bit_pattern(out);
            }
        }
    }
}

impl<T: BitPattern> BitPattern for Vec<T> {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        self.as_slice().bit_pattern(out);
    }
}

impl<T: BitPattern> BitPattern for [T] {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        for v in self {
            v.bit_pattern(out);
        }
    }
}

impl<T: BitPattern + ?Sized> BitPattern for &T {
    fn bit_pattern(&self, out: &mut Vec<u64>) {
        (*self).bit_pattern(out);
    }
}

macro_rules! impl_bitpattern_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: BitPattern),+> BitPattern for ($($name,)+) {
            fn bit_pattern(&self, out: &mut Vec<u64>) {
                $(self.$idx.bit_pattern(out);)+
            }
        }
    };
}

impl_bitpattern_tuple!(A: 0);
impl_bitpattern_tuple!(A: 0, B: 1);
impl_bitpattern_tuple!(A: 0, B: 1, C: 2);
impl_bitpattern_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Runs `f` inside a rayon pool of `threads` threads and returns its
/// result. Convenience wrapper over `ThreadPoolBuilder… .install`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds")
        .install(f)
}

/// Runs `f` once under each thread count in `counts` and asserts every
/// result's [`BitPattern`] is identical to the first count's.
///
/// Returns the baseline result so callers can chain further checks
/// (e.g. compare the parallel family against a sequential oracle).
///
/// # Panics
/// Panics with both values' `Debug` rendering when any run diverges,
/// or when `counts` is empty.
pub fn assert_deterministic_across<T, F>(counts: &[usize], f: F) -> T
where
    T: BitPattern + Debug,
    F: Fn() -> T,
{
    assert!(!counts.is_empty(), "need at least one thread count");
    let baseline = with_threads(counts[0], &f);
    let expect = baseline.bits();
    for &threads in &counts[1..] {
        let got = with_threads(threads, &f);
        assert_eq!(
            expect,
            got.bits(),
            "result diverged at {threads} threads (baseline {} threads):\n\
             baseline: {baseline:?}\n\
             at {threads} threads: {got:?}",
            counts[0],
        );
    }
    baseline
}

/// [`assert_deterministic_across`] under the workspace's canonical
/// thread counts [`DEFAULT_THREAD_COUNTS`] (1/2/3/8).
pub fn assert_deterministic<T, F>(f: F) -> T
where
    T: BitPattern + Debug,
    F: Fn() -> T,
{
    assert_deterministic_across(&DEFAULT_THREAD_COUNTS, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn floats_compare_bitwise() {
        assert_ne!(0.0f64.bits(), (-0.0f64).bits());
        assert_eq!(1.5f64.bits(), 1.5f64.bits());
        let quiet = f64::NAN;
        assert_eq!(quiet.bits(), quiet.bits(), "same NaN payload is equal");
    }

    #[test]
    fn containers_are_length_prefixed() {
        // Without prefixes [[1],[2]] and [[1,2]] would collide.
        let a: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let b: Vec<Vec<u64>> = vec![vec![1, 2]];
        assert_ne!(a.bits(), b.bits());
        let s1 = ("ab", 1u32);
        let s2 = ("a", 98u32); // 'b' == 98
        assert_ne!(s1.bits(), s2.bits());
    }

    #[test]
    fn option_disambiguates() {
        assert_ne!(Some(0u64).bits(), None::<u64>.bits());
    }

    #[test]
    fn deterministic_parallel_sum_passes() {
        // Ordered collect + sequential reduction: bit-stable by design.
        let result = assert_deterministic(|| {
            let parts: Vec<f64> = (0..1000usize)
                .into_par_iter()
                .map(|i| (i as f64).sqrt())
                .collect();
            parts.iter().sum::<f64>()
        });
        assert!(result > 0.0);
    }

    #[test]
    fn with_threads_overrides_pool_size() {
        assert_eq!(with_threads(3, rayon::current_num_threads), 3);
    }

    #[test]
    #[should_panic(expected = "diverged at")]
    fn thread_dependent_result_is_caught() {
        assert_deterministic(rayon::current_num_threads);
    }
}
