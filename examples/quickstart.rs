//! Quickstart: build a Table-3-style synthetic market, run all five
//! pricing strategies from the paper, and compare their revenue.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use maps::prelude::*;

fn main() {
    // A scaled-down version of the paper's default synthetic dataset
    // (Table 3 bold entries shrunk ~20× so this runs in seconds).
    let config = SyntheticConfig::paper_default()
        .with_num_workers(250)
        .with_num_tasks(1_000)
        .with_periods(50)
        .with_grid_side(10);

    println!("maps-rs quickstart");
    println!("==================");
    println!(
        "world: |W|={} |R|={} T={} G={}x{}",
        config.num_workers, config.num_tasks, config.periods, config.grid_side, config.grid_side
    );
    println!();
    println!(
        "{:<12}{:>12}{:>10}{:>10}{:>10}{:>12}",
        "strategy", "revenue", "issued", "accepted", "matched", "pricing(ms)"
    );

    let mut outcomes = Vec::new();
    for kind in StrategyKind::ALL {
        // Same seed ⇒ same requesters, valuations and workers for every
        // strategy: differences below are purely pricing decisions.
        let world = config.build(42);
        let outcome = Simulation::new(world, kind).run();
        println!(
            "{:<12}{:>12.1}{:>10}{:>10}{:>10}{:>12.2}",
            outcome.strategy,
            outcome.total_revenue,
            outcome.issued_tasks,
            outcome.accepted_tasks,
            outcome.matched_tasks,
            outcome.pricing_secs * 1e3,
        );
        outcomes.push(outcome);
    }

    let maps = &outcomes[0];
    let best_baseline = outcomes[1..]
        .iter()
        .max_by(|a, b| a.total_revenue.total_cmp(&b.total_revenue))
        .expect("baselines exist");
    println!();
    println!(
        "MAPS vs best baseline ({}): {:+.1}%",
        best_baseline.strategy,
        100.0 * (maps.total_revenue / best_baseline.total_revenue - 1.0)
    );
}
