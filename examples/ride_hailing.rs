//! Ride-hailing scenario: the Beijing-like rush-hour workload (the
//! paper's real-data substitute, Table 4 dataset #1) at reduced scale,
//! with an ASCII heat-map of the prices MAPS posts across the 10×8 grid.
//!
//! ```sh
//! cargo run --release --example ride_hailing
//! ```

use maps::prelude::*;

fn main() {
    // Dataset #1 (5–7 pm, heavy demand) at 5% scale: ~5.7k requests and
    // ~1.4k drivers over 120 one-minute periods; drivers stay for
    // δ_w = 15 periods and relocate after every trip.
    let config = BeijingConfig::rush_hour(15).with_scale(0.05);
    let (w_full, r_full) = config.paper_counts();
    println!("Beijing-like rush hour (paper counts |W|={w_full}, |R|={r_full}; scale 5%)");
    println!();

    println!(
        "{:<12}{:>12}{:>10}{:>10}{:>16}",
        "strategy", "revenue", "accepted", "matched", "revenue/match"
    );
    for kind in StrategyKind::ALL {
        let world = config.build(7);
        let outcome = Simulation::new(world, kind).run();
        println!(
            "{:<12}{:>12.1}{:>10}{:>10}{:>16.2}",
            outcome.strategy,
            outcome.total_revenue,
            outcome.accepted_tasks,
            outcome.matched_tasks,
            outcome.total_revenue / outcome.matched_tasks.max(1) as f64,
        );
    }

    // Price heat-map: run MAPS manually for the first 30 periods and
    // average the posted prices per grid.
    println!();
    println!("MAPS average posted price per grid (first 30 periods):");
    let world = config.build(7);
    let grid = world.grid;
    let cells = grid.num_cells();
    let mut maps = maps::core::MapsStrategy::paper_default(cells);
    let mut probe = GroundTruthProbe::new(&world.demands, 1);
    maps.calibrate(&mut probe);

    let mut sums = vec![0.0f64; cells];
    let mut counts = vec![0u32; cells];
    for t in 0..30 {
        let tasks: Vec<maps::core::TaskInput> = world.periods[t]
            .tasks
            .iter()
            .map(|gt| maps::core::TaskInput {
                origin: gt.origin,
                distance: gt.distance,
                cell: gt.cell,
            })
            .collect();
        let workers: Vec<maps::core::WorkerInput> = world.periods[..=t]
            .iter()
            .flat_map(|p| &p.workers)
            .map(|w| maps::core::WorkerInput {
                location: w.location,
                radius: w.radius,
                cell: grid.cell_of(w.location),
            })
            .collect();
        let graph = maps::core::build_period_graph_capped(&grid, &tasks, &workers, 64);
        let input = maps::core::PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        for (c, &p) in schedule.prices.iter().enumerate() {
            sums[c] += p;
            counts[c] += 1;
        }
    }

    // Rows printed top (north) to bottom.
    for row in (0..grid.ny()).rev() {
        let mut line = String::new();
        for col in 0..grid.nx() {
            let c = (row * grid.nx() + col) as usize;
            let avg = sums[c] / counts[c].max(1) as f64;
            line.push_str(&format!("{avg:>6.2}"));
        }
        println!("  {line}");
    }
    println!();
    println!("(hotspot grids around the CBD clusters carry visibly higher prices)");
}
