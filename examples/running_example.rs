//! The paper's running example (Examples 1, 3 and 5) reproduced end to
//! end with exact numbers.
//!
//! ```sh
//! cargo run --example running_example
//! ```

use maps::core::prelude::*;
use maps::market::PriceLadder;
use maps::matching::{expected_total_revenue_exact, max_cardinality_matching};

fn main() {
    let ex = RunningExample::new();

    println!("Example 1 — the market");
    println!("======================");
    for (i, t) in ex.tasks.iter().enumerate() {
        println!(
            "  r{} origin=({:.1},{:.1})  d_r={:.1}  grid {}",
            i + 1,
            t.origin.x,
            t.origin.y,
            t.distance,
            t.cell.paper_number()
        );
    }
    for (i, w) in ex.workers.iter().enumerate() {
        println!(
            "  w{} location=({:.1},{:.1})  range a_w=2.5",
            i + 1,
            w.location.x,
            w.location.y
        );
    }
    println!();
    println!("Bipartite graph (Fig. 1b):");
    for l in 0..ex.graph.n_left() {
        let nbrs: Vec<String> = ex
            .graph
            .neighbors(l)
            .iter()
            .map(|w| format!("w{}", w + 1))
            .collect();
        println!("  r{} — {{{}}}", l + 1, nbrs.join(", "));
    }
    println!(
        "  maximum matching cardinality: {} (\"at most two tasks can be served\")",
        max_cardinality_matching(&ex.graph).cardinality()
    );

    println!();
    println!("Example 3 — expected total revenue at prices (3, 3, 2)");
    println!("======================================================");
    let prices = RunningExample::OPTIMAL_PRICES;
    let expected = expected_total_revenue_exact(
        &ex.graph,
        &ex.weights(prices),
        &RunningExample::accept_probs(prices),
    );
    println!("  E[U | prices (3,3,2)] = {expected:.4}  (paper prints 4.1)");

    // Exhaustive optimality check over per-grid prices in Table 1.
    let mut best = (f64::NEG_INFINITY, [0.0f64; 3]);
    for p9 in [1.0, 2.0, 3.0] {
        for p11 in [1.0, 2.0, 3.0] {
            let p = [p9, p9, p11];
            let e = expected_total_revenue_exact(
                &ex.graph,
                &ex.weights(p),
                &RunningExample::accept_probs(p),
            );
            println!("  grid9={p9}  grid11={p11}  ->  E = {e:.4}");
            if e > best.0 {
                best = (e, p);
            }
        }
    }
    println!(
        "  optimum: grid 9 -> {}, grid 11 -> {} (matches the paper)",
        best.1[0], best.1[2]
    );

    println!();
    println!("Example 5 — MAPS reprices the grids");
    println!("===================================");
    // Seed MAPS with the Table-1 statistics and let Algorithm 2 run.
    let ladder = PriceLadder::explicit(vec![1.0, 2.0, 3.0]);
    let mut maps = MapsStrategy::new(ex.grid.num_cells(), ladder, MapsConfig::default());
    for cell in 0..ex.grid.num_cells() {
        for (idx, s) in [0.9, 0.8, 0.5].iter().enumerate() {
            let n = 1_000_000u64;
            maps.stats_mut(cell)
                .observe_batch(idx, n, (s * n as f64) as u64);
        }
    }
    maps.set_base_price(2.0);
    let graph = build_period_graph(&ex.grid, &ex.tasks, &ex.workers);
    let input = PeriodInput {
        grid: &ex.grid,
        tasks: &ex.tasks,
        workers: &ex.workers,
        graph: &graph,
    };
    let schedule = maps.price_period(&input);
    println!("  grid  9 -> price {}", schedule.prices[8]);
    println!("  grid 11 -> price {}", schedule.prices[10]);
    println!("  (the paper's Example 5 derives exactly these prices)");
}
