//! Surge event: the paper's stadium motivation ("near the stadium after
//! a football match, there are usually insufficient taxis … and
//! passengers are willing to pay a higher price") as a custom
//! [`GroundTruth`]: a localized demand burst in the middle of the
//! horizon. The example prints MAPS's price trajectory for the stadium
//! grid versus a calm grid, showing dynamic repricing.
//!
//! ```sh
//! cargo run --release --example surge_event
//! ```

use maps::core::{
    build_period_graph_capped, MapsStrategy, PeriodInput, PricingStrategy, TaskInput, WorkerInput,
};
use maps::market::Demand;
use maps::market::DemandDistribution;
use maps::prelude::*;
use maps::spatial::{GridSpec, Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const T: usize = 120;
const SURGE_START: usize = 50;
const SURGE_END: usize = 70;

/// Builds a 6×6 world with uniform background demand plus a stadium
/// burst at grid (1,1) between periods 50 and 70.
fn build_world(seed: u64) -> GroundTruth {
    let region = Rect::square(60.0);
    let grid = GridSpec::square(region, 6);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Stadium-goers are willing to pay more (μ = 3) than the background
    // market (μ = 2).
    let stadium = Point::new(15.0, 15.0);
    let stadium_cell = grid.cell_of(stadium);
    let demands: Vec<Demand> = grid
        .cells()
        .map(|c| {
            if c == stadium_cell {
                Demand::paper_normal(3.0, 0.8)
            } else {
                Demand::paper_normal(2.0, 0.8)
            }
        })
        .collect();

    let mut periods = vec![PeriodData::default(); T];
    let push_task = |periods: &mut Vec<PeriodData>,
                     t: usize,
                     origin: Point,
                     rng: &mut SmallRng,
                     demands: &[Demand],
                     grid: &GridSpec| {
        let destination = Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..60.0));
        let distance = origin.euclidean(destination).max(0.5);
        let cell = grid.cell_of(origin);
        periods[t].tasks.push(GroundTask {
            origin,
            destination,
            distance,
            valuation: demands[cell.index()].sample(rng),
            cell,
        });
    };

    for t in 0..T {
        // Background: ~6 tasks/period anywhere.
        for _ in 0..6 {
            let origin = Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..60.0));
            push_task(&mut periods, t, origin, &mut rng, &demands, &grid);
        }
        // Surge: 25 extra tasks/period near the stadium.
        if (SURGE_START..SURGE_END).contains(&t) {
            for _ in 0..25 {
                let origin = Point::new(
                    (stadium.x + rng.gen_range(-4.0..4.0)).clamp(0.0, 60.0),
                    (stadium.y + rng.gen_range(-4.0..4.0)).clamp(0.0, 60.0),
                );
                push_task(&mut periods, t, origin, &mut rng, &demands, &grid);
            }
        }
        // Steady trickle of drivers.
        for _ in 0..3 {
            periods[t].workers.push(GroundWorker {
                location: Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..60.0)),
                radius: 12.0,
                duration: u32::MAX,
            });
        }
    }
    GroundTruth {
        grid,
        demands,
        periods,
        match_policy: MatchPolicy::Relocate { speed: 2.0 },
    }
}

fn main() {
    let world = build_world(11);
    let grid = world.grid;
    let stadium_cell = grid.cell_of(Point::new(15.0, 15.0));
    let calm_cell = grid.cell_of(Point::new(45.0, 45.0));

    // Revenue comparison first.
    println!("Stadium surge scenario (T = {T}, surge in [{SURGE_START}, {SURGE_END}))");
    println!();
    for kind in StrategyKind::ALL {
        let outcome = Simulation::new(build_world(11), kind).run();
        println!(
            "  {:<12} revenue {:>9.1}  matched {:>5}",
            outcome.strategy, outcome.total_revenue, outcome.matched_tasks
        );
    }

    // Now trace MAPS's posted prices over time for the two cells.
    let cells = grid.num_cells();
    let mut maps = MapsStrategy::paper_default(cells);
    let mut probe = GroundTruthProbe::new(&world.demands, 3);
    maps.calibrate(&mut probe);

    println!();
    println!("MAPS price trajectory (stadium grid vs calm grid):");
    println!("  {:<8}{:>10}{:>10}", "period", "stadium", "calm");
    let mut active: Vec<(Point, u32)> = Vec::new(); // (location, busy_until)
    for t in 0..T {
        for w in &world.periods[t].workers {
            active.push((w.location, t as u32));
        }
        let tasks: Vec<TaskInput> = world.periods[t]
            .tasks
            .iter()
            .map(|gt| TaskInput {
                origin: gt.origin,
                distance: gt.distance,
                cell: gt.cell,
            })
            .collect();
        let workers: Vec<WorkerInput> = active
            .iter()
            .filter(|(_, busy)| *busy <= t as u32)
            .map(|(loc, _)| WorkerInput {
                location: *loc,
                radius: 12.0,
                cell: grid.cell_of(*loc),
            })
            .collect();
        let graph = build_period_graph_capped(&grid, &tasks, &workers, 64);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        if t % 10 == 0 || t == SURGE_START || t == SURGE_END {
            let marker = if (SURGE_START..SURGE_END).contains(&t) {
                "  << surge"
            } else {
                ""
            };
            println!(
                "  {:<8}{:>10.3}{:>10.3}{}",
                t,
                schedule.price(stadium_cell),
                schedule.price(calm_cell),
                marker
            );
        }
    }
    println!();
    println!("(the stadium grid's price climbs during the surge window while the calm grid stays near the base price)");
}
