//! # maps
//!
//! Umbrella crate for **maps-rs**, a production-quality Rust reproduction of
//!
//! > Yongxin Tong, Libin Wang, Zimu Zhou, Lei Chen, Bowen Du, Jieping Ye.
//! > *Dynamic Pricing in Spatial Crowdsourcing: A Matching-Based Approach.*
//! > SIGMOD 2018.
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`spatial`] — geometry, grid partitioning (Definition 1), spatial index.
//! * [`matching`] — bipartite graphs, maximum(-weight) matching,
//!   possible-world enumeration (Definitions 5–6).
//! * [`market`] — MHR demand distributions, Myerson reserve prices,
//!   acceptance-ratio estimators (sampling + UCB) and change detection.
//! * [`core`] — the GDP problem and the pricing strategies:
//!   `BasePricing` (Algorithm 1), `Maps` (Algorithms 2–3) and the
//!   SDR / SDE / CappedUCB baselines.
//! * [`simulator`] — synthetic (Table 3) and Beijing-like (Table 4)
//!   workload generators plus the per-period platform simulator used by
//!   the experiment harness.
//! * [`service`] — the grid-sharded **online** pricing service: ingests
//!   worker/task/tick event streams and serves posted prices
//!   continuously, with replay bit-identical to the batch simulator at
//!   any shard count.
//! * [`telemetry`] — O(1) fixed-bucket log2 latency histograms: pure
//!   deterministic counters (event-time, never wall-clock) that ride
//!   inside `Outcome::deterministic_bits`.
//!
//! ## Quickstart
//!
//! ```
//! use maps::prelude::*;
//!
//! // Build the paper's Table-3 default synthetic market at a small scale,
//! // run every pricing strategy for a few periods and compare revenue.
//! let cfg = SyntheticConfig::paper_default()
//!     .with_num_workers(200)
//!     .with_num_tasks(800)
//!     .with_periods(20);
//! let outcome = Simulation::new(cfg.build(42), StrategyKind::Maps).run();
//! assert!(outcome.total_revenue >= 0.0);
//! ```

pub use maps_core as core;
pub use maps_market as market;
pub use maps_matching as matching;
pub use maps_service as service;
pub use maps_simulator as simulator;
pub use maps_spatial as spatial;
pub use maps_telemetry as telemetry;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use maps_core::prelude::*;
    pub use maps_market::prelude::*;
    pub use maps_matching::prelude::*;
    pub use maps_simulator::prelude::*;
    pub use maps_spatial::{BucketIndex, CellId, GridSpec, Point, Rect};
}
