//! Integration tests anchoring the whole stack to the paper's worked
//! examples (Examples 1–5, Table 1, Theorem 1), through the public
//! umbrella API only.

use maps::core::hardness::{reduce, Formula, Literal};
use maps::core::prelude::*;
use maps::market::{FreqEstimator, PriceLadder};
use maps::matching::prelude::*;

#[test]
fn example1_graph_and_matching_claims() {
    let ex = RunningExample::new();
    // Grid memberships (Examples 2 and 5).
    assert_eq!(ex.tasks[0].cell.paper_number(), 9);
    assert_eq!(ex.tasks[1].cell.paper_number(), 9);
    assert_eq!(ex.tasks[2].cell.paper_number(), 11);
    assert_eq!(ex.workers[2].cell.paper_number(), 7);
    // "at most two tasks can be served and at most one of r1 and r2"
    let m = max_cardinality_matching(&ex.graph);
    assert_eq!(m.cardinality(), 2);
    let both_r1_r2 = m.pairs[0].is_some() && m.pairs[1].is_some();
    assert!(!both_r1_r2);
}

#[test]
fn example3_expected_revenue_through_possible_worlds() {
    let ex = RunningExample::new();
    let prices = RunningExample::OPTIMAL_PRICES;
    let weights = ex.weights(prices);
    let probs = RunningExample::accept_probs(prices);
    let pw = PossibleWorlds::new(&ex.graph, &weights, &probs);
    // 2^3 = 8 possible worlds, probabilities sum to 1 (Fig. 2).
    assert_eq!(pw.num_worlds(), 8);
    let total_p: f64 = pw.worlds().map(|w| w.probability).sum();
    assert!((total_p - 1.0).abs() < 1e-12);
    assert!((pw.expected_revenue() - 4.075).abs() < 1e-9);
}

#[test]
fn example4_base_pricing_arithmetic() {
    // k = 4; ladder {1, 1.5, 2.25, 3.375}; h(1) = 335.
    let ladder = PriceLadder::paper_default();
    assert_eq!(ladder.k(), 4);
    assert_eq!(ladder.len(), 4);
    assert_eq!(FreqEstimator::required_samples(1.0, 0.2, 0.01, 4), 335);
    // The example's observed ratios 0.9, 0.85, 0.75, 0.4 make 2.25 the
    // argmax of p·Ŝ(p): 0.9, 1.275, 1.6875, 1.35.
    let s_hat = [0.9, 0.85, 0.75, 0.4];
    let best = ladder
        .ascending()
        .max_by(|a, b| (a.1 * s_hat[a.0]).total_cmp(&(b.1 * s_hat[b.0])))
        .unwrap();
    assert_eq!(best.1, 2.25);
}

#[test]
fn example5_maps_prices_via_public_api() {
    let ex = RunningExample::new();
    let ladder = PriceLadder::explicit(vec![1.0, 2.0, 3.0]);
    let mut maps = MapsStrategy::new(ex.grid.num_cells(), ladder, MapsConfig::default());
    for cell in 0..ex.grid.num_cells() {
        for (idx, s) in [0.9, 0.8, 0.5].iter().enumerate() {
            maps.stats_mut(cell)
                .observe_batch(idx, 1_000_000, (s * 1_000_000f64) as u64);
        }
    }
    maps.set_base_price(2.0);
    let graph = build_period_graph(&ex.grid, &ex.tasks, &ex.workers);
    let schedule = maps.price_period(&PeriodInput {
        grid: &ex.grid,
        tasks: &ex.tasks,
        workers: &ex.workers,
        graph: &graph,
    });
    assert_eq!(schedule.prices[8], 3.0, "grid 9 → 3 (Example 5)");
    assert_eq!(schedule.prices[10], 2.0, "grid 11 → 2 (Example 5)");
    // The resulting expected revenue is the paper's optimum.
    let task_prices = [
        schedule.price(ex.tasks[0].cell),
        schedule.price(ex.tasks[1].cell),
        schedule.price(ex.tasks[2].cell),
    ];
    let e = expected_total_revenue_exact(
        &ex.graph,
        &ex.weights(task_prices),
        &RunningExample::accept_probs(task_prices),
    );
    assert!((e - RunningExample::OPTIMAL_EXPECTED_REVENUE).abs() < 1e-9);
}

#[test]
fn theorem1_reduction_roundtrip() {
    // Satisfiable ⇒ revenue m; unsatisfiable ⇒ strictly below m.
    let sat = Formula::new(
        2,
        vec![
            [Literal::pos(0), Literal::neg(1), Literal::pos(1)],
            [Literal::neg(0), Literal::pos(1), Literal::pos(1)],
        ],
    );
    assert!(sat.brute_force_satisfiable().is_some());
    assert!(reduce(&sat).max_revenue_reaches_m());

    let unsat = Formula::new(
        1,
        vec![
            [Literal::pos(0), Literal::pos(0), Literal::pos(0)],
            [Literal::neg(0), Literal::neg(0), Literal::neg(0)],
        ],
    );
    assert!(unsat.brute_force_satisfiable().is_none());
    assert!(!reduce(&unsat).max_revenue_reaches_m());
}

#[test]
fn table1_monotone_acceptance() {
    // S(p) must be non-increasing (Definition 3).
    assert!(RunningExample::table1(1.0) > RunningExample::table1(2.0));
    assert!(RunningExample::table1(2.0) > RunningExample::table1(3.0));
}
