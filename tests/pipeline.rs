//! End-to-end pipeline tests: simulator + strategies on synthetic and
//! Beijing-like worlds, checking the paper's qualitative claims at
//! CI-friendly scales.

use maps::prelude::*;

fn small_synthetic(seed: u64) -> GroundTruth {
    SyntheticConfig::paper_default()
        .with_num_workers(300)
        .with_num_tasks(1_200)
        .with_periods(60)
        .build(seed)
}

#[test]
fn all_strategies_complete_and_conserve() {
    let world = small_synthetic(1);
    for kind in StrategyKind::ALL {
        let outcome = Simulation::new(world.clone(), kind).run();
        assert!(outcome.is_consistent(), "{kind}");
        assert_eq!(outcome.issued_tasks, 1_200, "{kind}");
        assert!(outcome.total_revenue.is_finite() && outcome.total_revenue >= 0.0);
        assert_eq!(outcome.revenue_per_period.len(), 60);
    }
}

#[test]
fn determinism_across_runs() {
    let a = Simulation::new(small_synthetic(7), StrategyKind::Maps).run();
    let b = Simulation::new(small_synthetic(7), StrategyKind::Maps).run();
    assert_eq!(a.total_revenue, b.total_revenue);
    assert_eq!(a.matched_tasks, b.matched_tasks);
    assert_eq!(a.revenue_per_period, b.revenue_per_period);
}

#[test]
fn maps_beats_flat_pricing_on_average() {
    // The paper's headline (Figs. 6–8): MAPS yields the highest revenue.
    // At CI scale we require MAPS > BaseP averaged over seeds.
    let mut maps_total = 0.0;
    let mut base_total = 0.0;
    for seed in 0..3 {
        let world = small_synthetic(seed);
        maps_total += Simulation::new(world.clone(), StrategyKind::Maps)
            .run()
            .total_revenue;
        base_total += Simulation::new(world, StrategyKind::BaseP)
            .run()
            .total_revenue;
    }
    assert!(
        maps_total > base_total,
        "MAPS {maps_total} must beat BaseP {base_total}"
    );
}

#[test]
fn revenue_increases_with_supply() {
    // Fig. 6(a): more workers ⇒ more revenue (until saturation).
    let mut prev = 0.0;
    for workers in [100usize, 300, 900] {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(workers)
            .with_num_tasks(1_200)
            .with_periods(60)
            .build(3);
        let revenue = Simulation::new(world, StrategyKind::Maps)
            .run()
            .total_revenue;
        assert!(revenue > prev * 1.02, "|W|={workers}: {revenue} ≤ {prev}");
        prev = revenue;
    }
}

#[test]
fn revenue_saturates_in_demand() {
    // Fig. 6(b): with fixed supply, revenue grows with |R| then flattens.
    let rev = |tasks: usize| {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(150)
            .with_num_tasks(tasks)
            .with_periods(60)
            .build(5);
        Simulation::new(world, StrategyKind::BaseP)
            .run()
            .total_revenue
    };
    let r1 = rev(300);
    let r2 = rev(1200);
    let r3 = rev(4800);
    assert!(r2 > r1, "growth regime: {r2} ≤ {r1}");
    // Saturation: quadrupling demand again must NOT quadruple revenue.
    assert!(r3 < r2 * 2.5, "saturation regime: {r3} vs {r2}");
}

#[test]
fn wider_worker_radius_increases_revenue() {
    // Fig. 8(a): larger a_w ⇒ more edges ⇒ more revenue, saturating.
    let rev = |aw: f64| {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(300)
            .with_num_tasks(1_200)
            .with_periods(60)
            .with_worker_radius(aw)
            .build(9);
        Simulation::new(world, StrategyKind::Maps)
            .run()
            .total_revenue
    };
    assert!(rev(10.0) > rev(2.0));
}

#[test]
fn beijing_windows_run_end_to_end() {
    for cfg in [
        BeijingConfig::rush_hour(10).with_scale(0.01),
        BeijingConfig::night(10).with_scale(0.01),
    ] {
        let world = cfg.build(2);
        let outcome = Simulation::new(world, StrategyKind::Maps).run();
        assert!(outcome.is_consistent());
        assert!(outcome.total_revenue > 0.0);
    }
}

#[test]
fn longer_worker_duration_increases_beijing_revenue() {
    // Fig. 8(c,d): revenue grows with δ_w, then saturates.
    let rev = |delta: u32| {
        let world = BeijingConfig::rush_hour(delta).with_scale(0.02).build(4);
        Simulation::new(world, StrategyKind::BaseP)
            .run()
            .total_revenue
    };
    assert!(rev(25) > rev(5));
}

#[test]
fn calibration_skippable() {
    let world = small_synthetic(11);
    let outcome = Simulation::new(world, StrategyKind::Maps)
        .with_options(SimOptions {
            calibrate: false,
            ..SimOptions::default()
        })
        .run();
    assert_eq!(outcome.calibration_secs, 0.0);
    assert!(outcome.is_consistent());
}

#[test]
fn edge_cap_does_not_change_small_worlds() {
    // With few workers the capped builder is exactly the full builder, so
    // outcomes must be identical for any cap ≥ worker count.
    let world = small_synthetic(13);
    let a = Simulation::new(world.clone(), StrategyKind::Maps)
        .with_options(SimOptions {
            max_edges_per_task: 1_000_000,
            ..SimOptions::default()
        })
        .run();
    let b = Simulation::new(world, StrategyKind::Maps)
        .with_options(SimOptions {
            max_edges_per_task: 1_000,
            ..SimOptions::default()
        })
        .run();
    assert_eq!(a.total_revenue, b.total_revenue);
}
