//! Cross-crate property-based tests (proptest): the structural
//! invariants DESIGN.md §7 commits to, on randomized instances.
//!
//! Since PR 2 the vendored proptest **shrinks** failures: a failing
//! invariant here is re-reported as a minimal case (binary-searched
//! scalars, length/element-minimized vectors) instead of whatever
//! large instance the generator first hit.

use maps::core::prelude::*;
use maps::market::{Demand, DemandDistribution, PriceLadder, UcbStats};
use maps::matching::prelude::*;
use maps::prelude::{
    GroundTask, GroundTruth, GroundWorker, MatchPolicy, PeriodData, SimOptions, Simulation,
    SyntheticConfig,
};
use maps::service::{
    IngestConfig, IngestService, ServiceConfig, ServiceEvent, ShardedService, SlotArena, SlotHandle,
};
use maps::spatial::{CellId, GridSpec, Point, Rect};
use maps_testkit::{InterleavePlan, Interleaver};
use proptest::prelude::*;

/// Strategy generating a random bipartite graph with ≤ 10×10 vertices.
fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..10, 1usize..10).prop_flat_map(|(n_left, n_right)| {
        proptest::collection::vec(proptest::bool::weighted(0.3), n_left * n_right).prop_map(
            move |mask| {
                let mut b = BipartiteGraphBuilder::new(n_left, n_right);
                for l in 0..n_left {
                    for r in 0..n_right {
                        if mask[l * n_right + r] {
                            b.add_edge(l, r);
                        }
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy transversal-matroid matching is exactly optimal: it matches
    /// the Hungarian oracle's weight on every random instance.
    #[test]
    fn greedy_matches_hungarian(graph in arb_graph(), seed in 0u64..1000) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let weights: Vec<f64> = (0..graph.n_left())
            .map(|_| (next() % 1000) as f64 / 100.0)
            .collect();
        let (mg, wg) = max_weight_matching_left_weights(&graph, &weights);
        prop_assert!(mg.is_valid(&graph));
        let (_, wh) = max_weight_matching_dense(graph.n_left(), graph.n_right(), |l, r| {
            graph.has_edge(l, r).then_some(weights[l])
        });
        prop_assert!((wg - wh).abs() < 1e-9, "greedy {} vs hungarian {}", wg, wh);
    }

    /// Hopcroft–Karp reaches the same cardinality as repeated Kuhn
    /// augmentation.
    #[test]
    fn hopcroft_karp_equals_kuhn(graph in arb_graph()) {
        let hk = max_cardinality_matching(&graph).cardinality();
        let mut inc = IncrementalMatching::new(&graph);
        let mut kuhn = 0;
        for l in 0..graph.n_left() {
            if inc.try_augment(l) {
                kuhn += 1;
            }
        }
        prop_assert_eq!(hk, kuhn);
    }

    /// Possible-world probabilities always form a distribution and the
    /// Monte-Carlo estimator agrees with exact enumeration.
    #[test]
    fn possible_worlds_are_a_distribution(
        graph in arb_graph(),
        probs_raw in proptest::collection::vec(0.0f64..=1.0, 10),
        seed in 0u64..100,
    ) {
        let n = graph.n_left();
        let probs: Vec<f64> = probs_raw.iter().take(n).copied().collect();
        prop_assume!(probs.len() == n);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let pw = PossibleWorlds::new(&graph, &weights, &probs);
        let total: f64 = pw.worlds().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let exact = pw.expected_revenue();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let mc = monte_carlo_expected_revenue(&graph, &weights, &probs, 4000, &mut rng);
        // MC error scales with total weight; keep a generous band.
        let band = 0.1 * weights.iter().sum::<f64>().max(1.0);
        prop_assert!((mc - exact).abs() < band, "mc {} exact {}", mc, exact);
    }

    /// Every strategy posts prices within [p_min, p_max] on random worlds.
    #[test]
    fn prices_stay_in_window(seed in 0u64..50, workers in 5usize..60, tasks in 5usize..120) {
        let world = SyntheticConfig::paper_default()
            .with_num_workers(workers)
            .with_num_tasks(tasks)
            .with_periods(8)
            .with_grid_side(4)
            .build(seed);
        let grid = world.grid;
        for kind in StrategyKind::ALL {
            // Reach inside one period manually to inspect the schedule.
            let mut strategy: Box<dyn PricingStrategy> = match kind {
                StrategyKind::Maps => Box::new(MapsStrategy::paper_default(grid.num_cells())),
                StrategyKind::BaseP => Box::new(BasePStrategy::paper_default(grid.num_cells())),
                StrategyKind::Sdr => Box::new(SdrStrategy::paper_default(grid.num_cells())),
                StrategyKind::Sde => Box::new(SdeStrategy::paper_default(grid.num_cells())),
                StrategyKind::CappedUcb => {
                    Box::new(CappedUcbStrategy::paper_default(grid.num_cells()))
                }
            };
            let tasks: Vec<TaskInput> = world.periods[0]
                .tasks
                .iter()
                .map(|t| TaskInput { origin: t.origin, distance: t.distance, cell: t.cell })
                .collect();
            let workers: Vec<WorkerInput> = world.periods[0]
                .workers
                .iter()
                .map(|w| WorkerInput::new(&grid, w.location, w.radius))
                .collect();
            let graph = build_period_graph(&grid, &tasks, &workers);
            let schedule = strategy.price_period(&PeriodInput {
                grid: &grid,
                tasks: &tasks,
                workers: &workers,
                graph: &graph,
            });
            for &p in &schedule.prices {
                prop_assert!((1.0..=5.0).contains(&p), "{}: price {}", kind, p);
            }
        }
    }

    /// Simulator conservation: matched ≤ accepted ≤ issued, and with the
    /// Consume policy matched ≤ |W|.
    #[test]
    fn simulation_conservation(seed in 0u64..30) {
        let mut cfg = SyntheticConfig::paper_default()
            .with_num_workers(40)
            .with_num_tasks(200)
            .with_periods(10)
            .with_grid_side(4);
        cfg.match_policy = MatchPolicy::Consume;
        let world = cfg.build(seed);
        let outcome = Simulation::new(world, StrategyKind::Maps)
            .with_options(SimOptions { calibrate: false, ..SimOptions::default() })
            .run();
        prop_assert!(outcome.is_consistent());
        prop_assert!(outcome.matched_tasks <= 40);
    }

    /// The Algorithm-3 maximizer never exceeds the exact L value taken at
    /// its own choice, and L is monotone in supply (after lookahead this
    /// is what Δ ≥ 0 rests on).
    #[test]
    fn lfunction_maximizer_consistency(
        dists in proptest::collection::vec(0.1f64..10.0, 1..12),
        s_hats in proptest::collection::vec(0.0f64..=1.0, 4),
        n in 0usize..14,
    ) {
        let lf = LFunction::new(dists);
        let ladder = PriceLadder::paper_default();
        let mut stats = UcbStats::new(ladder.len());
        for (idx, s) in s_hats.iter().enumerate() {
            stats.observe_batch(idx, 10_000, (s * 10_000f64) as u64);
        }
        if let Some(m) = lf.maximize(n, &stats, &ladder, false) {
            // l_hat equals the true L at the chosen price and supply.
            let expect = lf.value(n, m.price, stats.s_hat(m.price_idx));
            prop_assert!((m.l_hat - expect).abs() < 1e-9);
            // And no other rung has a larger plain-mean L (no-UCB mode
            // maximizes exactly this).
            for (idx, p) in ladder.ascending() {
                let v = lf.value(n, p, stats.s_hat(idx));
                prop_assert!(v <= m.l_hat + 1e-9, "rung {} beats maximizer", p);
            }
        }
        // Monotone in n for every rung.
        for (idx, p) in ladder.ascending() {
            let s = stats.s_hat(idx);
            prop_assert!(lf.value(n, p, s) <= lf.value(n + 1, p, s) + 1e-12);
        }
    }

    /// PR-2 oracle: the rayon table-driven `price_period` is bit-identical
    /// to the retained sequential on-demand path on randomized panels —
    /// 1–64 grids, tie-heavy distance ladders (multiples of 0.5) and
    /// coarse acceptance ratios (eighths, maximizing cross-grid Δ ties),
    /// including zero-worker and zero-task edge panels — at 1/2/3-thread
    /// pools.
    #[test]
    fn parallel_pricing_matches_sequential_oracle(
        side in 1u32..=8,
        n_tasks in 0usize..=80,
        n_workers in 0usize..=50,
        seed in 0u64..1000,
    ) {
        let grid = GridSpec::square(Rect::square(100.0), side);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let tasks: Vec<TaskInput> = (0..n_tasks)
            .map(|_| {
                let x = (next() % 10_000) as f64 / 100.0;
                let y = (next() % 10_000) as f64 / 100.0;
                let d = 0.5 * (1 + next() % 6) as f64;
                TaskInput::new(&grid, Point::new(x, y), d)
            })
            .collect();
        let workers: Vec<WorkerInput> = (0..n_workers)
            .map(|_| {
                let x = (next() % 10_000) as f64 / 100.0;
                let y = (next() % 10_000) as f64 / 100.0;
                WorkerInput::new(&grid, Point::new(x, y), 12.0)
            })
            .collect();
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let make = |parallel: bool| {
            let mut maps = MapsStrategy::new(
                grid.num_cells(),
                PriceLadder::paper_default(),
                MapsConfig { parallel, ..MapsConfig::default() },
            );
            let mut t = seed | 1;
            for cell in 0..grid.num_cells() {
                for idx in 0..maps.ladder().len() {
                    t ^= t << 13;
                    t ^= t >> 7;
                    t ^= t << 17;
                    maps.stats_mut(cell).observe_batch(idx, 8, t % 9);
                }
            }
            maps
        };
        let sequential = make(false).price_period(&input).prices;
        let parallel = maps_testkit::assert_deterministic_across(&[1, 2, 3], || {
            make(true).price_period(&input).prices
        });
        for (cell, (sp, pp)) in sequential.iter().zip(&parallel).enumerate() {
            prop_assert!(
                sp.to_bits() == pp.to_bits(),
                "cell {}: sequential {} vs parallel {}",
                cell,
                sp,
                pp
            );
        }
    }

    /// PR-3 oracle: the incremental `PeriodGraphCache` replayed over a
    /// random arrival/departure/relocation churn script is bit-identical
    /// to the retained from-scratch builders on the materialized live
    /// set, every period — capped (`advance_capped`, odd periods) and
    /// complete (`advance`, even periods) — under the 1/2/3/8-thread
    /// `assert_deterministic` harness. Scripts start with 1–200 workers
    /// and include out-of-region relocations (the clamped-bucket path).
    #[test]
    fn incremental_graph_matches_scratch_rebuild(
        seed in 0u64..10_000,
        initial in 1usize..=200,
        periods in 1usize..=6,
        k in 1usize..=24,
    ) {
        fn graph_canon(g: &BipartiteGraph, out: &mut Vec<u64>) {
            out.push(g.n_left() as u64);
            out.push(g.n_right() as u64);
            for l in 0..g.n_left() {
                let ns = g.neighbors(l);
                out.push(ns.len() as u64);
                out.extend(ns.iter().map(|&r| r as u64));
            }
        }
        let grid = GridSpec::square(Rect::square(100.0), 5);
        // Replays the whole script from scratch on each invocation, so
        // the thread-sweep harness sees a pure function.
        let replay = || {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let point = |next: &mut dyn FnMut() -> u64| {
                // ~6% of points land outside the region.
                let scale = if next().is_multiple_of(16) { 120.0 } else { 100.0 };
                Point::new(
                    (next() % 10_000) as f64 / 10_000.0 * scale - 5.0,
                    (next() % 10_000) as f64 / 10_000.0 * scale - 5.0,
                )
            };
            let mut cache = PeriodGraphCache::new(&grid, 64);
            let mut live: Vec<(u32, WorkerInput)> = Vec::new(); // ascending id
            let mut next_id = 0u32;
            let mut incremental_bits = Vec::new();
            let mut scratch_bits = Vec::new();
            for period in 0..periods {
                let mut departures = Vec::new();
                if period > 0 {
                    live.retain(|&(id, _)| {
                        let stays = next() % 5 != 0;
                        if !stays {
                            departures.push(id);
                        }
                        stays
                    });
                }
                let mut relocations = Vec::new();
                for entry in live.iter_mut() {
                    if next() % 6 == 0 {
                        let to = point(&mut next);
                        entry.1.location = to;
                        entry.1.cell = grid.cell_of(to);
                        relocations.push((entry.0, to));
                    }
                }
                let n_arrivals = if period == 0 { initial as u64 } else { next() % 20 };
                let arrivals: Vec<(u32, WorkerInput)> = (0..n_arrivals)
                    .map(|_| {
                        let id = next_id;
                        next_id += 1;
                        let location = point(&mut next);
                        let radius = (next() % 2_000) as f64 / 100.0;
                        (id, WorkerInput::new(&grid, location, radius))
                    })
                    .collect();
                live.extend(arrivals.iter().copied());
                let tasks: Vec<TaskInput> = (0..next() % 20)
                    .map(|_| {
                        let origin = point(&mut next);
                        let distance = 0.5 + (next() % 300) as f64 / 100.0;
                        TaskInput::new(&grid, origin, distance)
                    })
                    .collect();
                let churn = WorkerChurn {
                    arrivals: &arrivals,
                    departures: &departures,
                    relocations: &relocations,
                };
                let workers: Vec<WorkerInput> = live.iter().map(|&(_, w)| w).collect();
                let (incremental, scratch) = if period % 2 == 1 {
                    (
                        cache.advance_capped(churn, &tasks, k),
                        build_period_graph_capped(&grid, &tasks, &workers, k),
                    )
                } else {
                    (
                        cache.advance(churn, &tasks),
                        build_period_graph(&grid, &tasks, &workers),
                    )
                };
                graph_canon(&incremental, &mut incremental_bits);
                graph_canon(&scratch, &mut scratch_bits);
            }
            (incremental_bits, scratch_bits)
        };
        let (incremental, scratch) = maps_testkit::assert_deterministic(replay);
        prop_assert_eq!(incremental, scratch, "incremental advance diverged from the oracle");
    }

    /// PR-4 oracle: a random event stream — worker arrivals with random
    /// durations, *explicit* `WorkerDepart` events (for a random subset
    /// the service is told `u32::MAX` and departed externally), task
    /// requests and period ticks — driven through the sharded online
    /// service must leave the service's outcome equal, every tick, to
    /// the batch simulator run over the equivalent ground-truth prefix
    /// (`Outcome::deterministic_bits`, so bit-level). Shard count is
    /// drawn 1..=8; both lifecycle policies are exercised.
    #[test]
    fn service_churn_stream_matches_batch_oracle_every_tick(
        seed in 0u64..2_000,
        periods in 1usize..=6,
        shards in 1usize..=8,
    ) {
        let grid = GridSpec::square(Rect::square(50.0), 3);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let match_policy = if next() % 2 == 0 {
            MatchPolicy::Consume
        } else {
            MatchPolicy::Relocate { speed: 1.0 }
        };
        let kind = StrategyKind::ALL[(next() % 5) as usize];
        // Script the world: per period, arrivals (with true durations)
        // and tasks. `external[id]` marks workers the service will see
        // as immortal but departed by an explicit event at expiry.
        let mut world_periods: Vec<PeriodData> = Vec::new();
        let mut external: Vec<bool> = Vec::new();
        for _ in 0..periods {
            let mut data = PeriodData::default();
            for _ in 0..next() % 5 {
                let duration = match next() % 4 {
                    0 => u32::MAX,
                    d => d as u32, // 1..=3
                };
                external.push(duration != u32::MAX && next() % 2 == 0);
                data.workers.push(GroundWorker {
                    location: Point::new(
                        (next() % 5_000) as f64 / 100.0,
                        (next() % 5_000) as f64 / 100.0,
                    ),
                    radius: 2.0 + (next() % 1_500) as f64 / 100.0,
                    duration,
                });
            }
            for _ in 0..next() % 8 {
                let origin = Point::new(
                    (next() % 5_000) as f64 / 100.0,
                    (next() % 5_000) as f64 / 100.0,
                );
                data.tasks.push(GroundTask {
                    origin,
                    destination: Point::new(
                        (next() % 5_000) as f64 / 100.0,
                        (next() % 5_000) as f64 / 100.0,
                    ),
                    distance: 0.5 + (next() % 300) as f64 / 100.0,
                    valuation: 1.0 + (next() % 400) as f64 / 100.0,
                    cell: grid.cell_of(origin),
                });
            }
            world_periods.push(data);
        }
        let demands = vec![Demand::paper_normal(2.5, 1.0); grid.num_cells()];
        let options = SimOptions { calibrate: false, ..SimOptions::default() };
        let mut service = ShardedService::new(
            grid,
            match_policy,
            kind,
            ServiceConfig { shards, ..ServiceConfig::default() },
        );
        // Explicit departures scheduled for the tick each worker's true
        // window ends at, pushed in the inter-tick window before it.
        let mut departs: Vec<(u32, u32)> = Vec::new(); // (period, id)
        let mut next_id = 0u32;
        for (t, data) in world_periods.iter().enumerate() {
            for &(fire, id) in departs.iter().filter(|&&(fire, _)| fire == t as u32) {
                let _ = fire;
                service.push(ServiceEvent::WorkerDepart { id });
            }
            for &w in &data.workers {
                let id = next_id;
                next_id += 1;
                let mut streamed = w;
                if external[id as usize] {
                    departs.push((t as u32 + w.duration, id));
                    streamed.duration = u32::MAX;
                }
                service.push(ServiceEvent::WorkerArrive { worker: streamed });
            }
            for &task in &data.tasks {
                service.push(ServiceEvent::TaskRequest { task });
            }
            service.push(ServiceEvent::PeriodTick);
            // The batch oracle over the equivalent ground-truth prefix.
            let prefix = GroundTruth {
                grid,
                demands: demands.clone(),
                periods: world_periods[..=t].to_vec(),
                match_policy,
            };
            let batch = Simulation::new(prefix, kind).with_options(options).run();
            prop_assert_eq!(
                service.outcome_snapshot().deterministic_bits(),
                batch.deterministic_bits(),
                "tick {}: {}-shard service state diverged from the batch oracle ({})",
                t,
                shards,
                kind
            );
        }
    }

    /// PR-5 oracle: **interleaving invariance** of the multi-producer
    /// ingestion front-end. A random event script — arrivals (some with
    /// finite durations, some invalid with NaN radii), explicit
    /// departures (including stale/bogus ids), task requests (some with
    /// NaN geometry the service must reject) — is split across 1–4
    /// producers by a *random* contiguous partition per epoch and
    /// streamed through bounded queues of random capacity under both a
    /// free and a seeded yield-perturbed schedule. After **every**
    /// epoch barrier the service must be bit-identical to serial `push`
    /// of the same canonical `(epoch, producer, seq)` order — with the
    /// serial baseline itself swept across the 1/2/3/8-thread harness —
    /// and the admission-rejection counters must agree too.
    #[test]
    fn ingested_stream_matches_serial_push(
        seed in 0u64..2_000,
        periods in 1usize..=5,
        producers in 1usize..=4,
        shards in 1usize..=4,
    ) {
        let grid = GridSpec::square(Rect::square(50.0), 3);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // The vendored proptest caps strategy tuples at four inputs, so
        // the queue capacity rides on the seed stream instead.
        let capacity = 1 + (next() % 8) as usize;
        let match_policy = if next() % 2 == 0 {
            MatchPolicy::Consume
        } else {
            MatchPolicy::Relocate { speed: 1.0 }
        };
        let kind = StrategyKind::ALL[(next() % 5) as usize];
        // The canonical per-epoch event scripts (the serial push order).
        let mut admitted = 0u64; // ids issued so far (valid arrivals only)
        let mut epochs: Vec<Vec<ServiceEvent>> = Vec::new();
        for _ in 0..periods {
            let mut events = Vec::new();
            for _ in 0..next() % 7 {
                match next() % 8 {
                    0..=3 => {
                        let mut worker = GroundWorker {
                            location: Point::new(
                                (next() % 5_000) as f64 / 100.0,
                                (next() % 5_000) as f64 / 100.0,
                            ),
                            radius: 2.0 + (next() % 1_500) as f64 / 100.0,
                            duration: match next() % 5 {
                                0 => u32::MAX,
                                d => d as u32, // 1..=4
                            },
                        };
                        if next() % 16 == 0 {
                            worker.radius = f64::NAN; // must be rejected
                        } else {
                            admitted += 1;
                        }
                        events.push(ServiceEvent::WorkerArrive { worker });
                    }
                    4..=5 => {
                        let origin = Point::new(
                            (next() % 5_000) as f64 / 100.0,
                            (next() % 5_000) as f64 / 100.0,
                        );
                        let mut task = GroundTask {
                            origin,
                            destination: Point::new(
                                (next() % 5_000) as f64 / 100.0,
                                (next() % 5_000) as f64 / 100.0,
                            ),
                            distance: 0.5 + (next() % 300) as f64 / 100.0,
                            valuation: 1.0 + (next() % 400) as f64 / 100.0,
                            cell: grid.cell_of(origin),
                        };
                        if next() % 12 == 0 {
                            task.origin = Point::new(f64::NAN, 1.0); // rejected
                        }
                        events.push(ServiceEvent::TaskRequest { task });
                    }
                    _ => {
                        // Sometimes a live id, sometimes stale/bogus —
                        // both must be handled identically either way.
                        let id = (next() % (admitted + 2)) as u32;
                        events.push(ServiceEvent::WorkerDepart { id });
                    }
                }
            }
            epochs.push(events);
        }
        // Random contiguous partition of each epoch across producers
        // (sorted random boundaries; 0 and len are always present, so
        // chunks may be empty — a producer can sit an epoch out).
        let partitions: Vec<Vec<usize>> = epochs
            .iter()
            .map(|events| {
                let mut bounds = vec![0usize; producers + 1];
                bounds[producers] = events.len();
                for b in bounds[1..producers].iter_mut() {
                    *b = (next() as usize) % (events.len() + 1);
                }
                bounds.sort_unstable();
                bounds
            })
            .collect();
        let make_service = || {
            ShardedService::new(
                grid,
                match_policy,
                kind,
                ServiceConfig { shards, ..ServiceConfig::default() },
            )
        };
        let (serial_bits, serial_rejected) = maps_testkit::assert_deterministic(|| {
            let mut service = make_service();
            let mut bits = Vec::new();
            for events in &epochs {
                for &event in events {
                    service.push(event);
                }
                service.push(ServiceEvent::PeriodTick);
                bits.push(service.outcome_snapshot().deterministic_bits());
            }
            (bits, service.rejected_events())
        });
        for plan in [InterleavePlan::Free, InterleavePlan::Staggered(seed)] {
            let mut service = make_service();
            let (ingest, handles) = IngestService::new(IngestConfig {
                producers,
                queue_capacity: capacity,
            });
            let interleaver = Interleaver::new(producers, plan);
            let mut bits = Vec::new();
            std::thread::scope(|scope| {
                for mut handle in handles {
                    let (interleaver, epochs, partitions) = (&interleaver, &epochs, &partitions);
                    scope.spawn(move || {
                        let p = handle.id() as usize;
                        for (events, bounds) in epochs.iter().zip(partitions) {
                            for &event in &events[bounds[p]..bounds[p + 1]] {
                                interleaver.step(p, || handle.send(event));
                            }
                            interleaver.step(p, || handle.end_epoch());
                        }
                        interleaver.finished(p);
                    });
                }
                ingest
                    .sequence_with(&mut service, |_, live| {
                        bits.push(live.outcome_snapshot().deterministic_bits());
                    })
                    .expect("proptest streams contain no fatal faults");
            });
            prop_assert_eq!(
                &bits,
                &serial_bits,
                "{}-producer stream (capacity {}, {:?}, {} shards, {}) diverged from serial push",
                producers,
                capacity,
                plan,
                shards,
                kind
            );
            prop_assert_eq!(service.rejected_events(), serial_rejected);
        }
    }

    /// PR-6 oracle: the write-ahead journal's frame encoding is a
    /// bijection on arbitrary record streams — producers (including the
    /// tick pseudo-producer), epochs, sequence numbers, and every event
    /// kind with *arbitrary-bit-pattern* float payloads (NaN, ±∞,
    /// subnormals: invalid events are journaled before admission
    /// validation, so they must round-trip bit-exactly) — and decoding
    /// any truncation of the byte stream yields exactly the
    /// fully-framed prefix with the tail correctly classified as
    /// `Clean` (cut on a frame boundary) or `Torn` at the boundary.
    /// Failures shrink to a minimal record list.
    #[test]
    fn journal_frames_roundtrip_and_survive_truncation(
        raw in proptest::collection::vec(
            (0u64..4, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
            0usize..32,
        ),
        cut_seed in 0u64..u64::MAX,
    ) {
        use maps::service::journal::{decode_records, encode_record};
        use maps::service::{JournalRecord, Tail, TICK_PRODUCER};
        let records: Vec<JournalRecord> = raw
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b, c))| {
                let event = match kind {
                    0 => ServiceEvent::WorkerArrive {
                        worker: GroundWorker {
                            location: Point::new(f64::from_bits(a), f64::from_bits(b)),
                            radius: f64::from_bits(c),
                            duration: (b ^ c) as u32,
                        },
                    },
                    1 => ServiceEvent::WorkerDepart { id: a as u32 },
                    2 => ServiceEvent::TaskRequest {
                        task: GroundTask {
                            origin: Point::new(f64::from_bits(a), f64::from_bits(!a)),
                            destination: Point::new(
                                f64::from_bits(b),
                                f64::from_bits(b.rotate_left(21)),
                            ),
                            distance: f64::from_bits(c),
                            valuation: f64::from_bits(c.rotate_left(11)),
                            cell: CellId(b as u32),
                        },
                    },
                    _ => ServiceEvent::PeriodTick,
                };
                JournalRecord {
                    producer: if kind == 3 { TICK_PRODUCER } else { (a % 5) as u32 },
                    epoch: b % 1_000,
                    seq: i as u64,
                    event,
                }
            })
            .collect();
        let encode_all = |records: &[JournalRecord]| {
            let mut buf = Vec::new();
            for record in records {
                encode_record(record, &mut buf);
            }
            buf
        };
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize]; // frame end offsets
        for record in &records {
            encode_record(record, &mut buf);
            boundaries.push(buf.len());
        }
        // Full stream: clean tail, and re-encoding the decoded records
        // reproduces the bytes — a bit-exact round trip (frame fields
        // are fixed-width, so byte equality is record equality, NaN
        // payloads included).
        let (decoded, tail) = decode_records(&buf);
        prop_assert_eq!(tail, Tail::Clean);
        prop_assert_eq!(decoded.len(), records.len());
        prop_assert_eq!(&encode_all(&decoded), &buf, "decode is not the inverse of encode");
        // Any truncation: exactly the fully-framed prefix survives.
        if !buf.is_empty() {
            let cut = (cut_seed as usize) % buf.len();
            let full = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let valid = boundaries[full];
            let (prefix, tail) = decode_records(&buf[..cut]);
            prop_assert_eq!(prefix.len(), full, "cut {} kept a partial frame", cut);
            prop_assert_eq!(&encode_all(&prefix)[..], &buf[..valid]);
            if cut == valid {
                prop_assert_eq!(tail, Tail::Clean);
            } else {
                prop_assert_eq!(
                    tail,
                    Tail::Torn {
                        valid_len: valid as u64,
                        dropped: (cut - valid) as u64,
                    },
                    "cut {} misclassified the torn tail",
                    cut
                );
            }
        }
    }

    /// PR-8 oracle: the staging slot arena never aliases a live id
    /// through slot reuse. A random op script (insert / remove-live /
    /// remove-stale / drain) is mirrored against a plain shadow model;
    /// after every op, each live handle resolves to exactly the value
    /// it was issued for, every freed handle is stale forever (the
    /// generation bump — the release-mode ABA defence the service's
    /// `cancel_staged` leans on), and `SlotHandle::DEAD` never
    /// resolves.
    #[test]
    fn slot_arena_reuse_never_aliases_a_live_id(
        ops in proptest::collection::vec((0u64..u64::MAX, 0u64..4), 1usize..200),
    ) {
        let mut arena: SlotArena<u64> = SlotArena::new();
        let mut live: Vec<(SlotHandle, u64)> = Vec::new();
        let mut stale: Vec<SlotHandle> = Vec::new();
        let mut next_value = 0u64;
        let mut drained = Vec::new();
        for &(pick, op) in &ops {
            match op {
                // Insert (weighted double so scripts grow).
                0 | 1 => {
                    let value = next_value;
                    next_value += 1;
                    live.push((arena.insert(value), value));
                }
                // Remove a live handle: exactly its own value comes out.
                2 if !live.is_empty() => {
                    let (handle, value) = live.swap_remove(pick as usize % live.len());
                    prop_assert_eq!(arena.remove(handle), Some(value));
                    stale.push(handle);
                }
                // Remove through a stale handle: rejected, nothing moves.
                3 if !stale.is_empty() => {
                    let handle = stale[pick as usize % stale.len()];
                    let before = arena.len();
                    prop_assert_eq!(arena.remove(handle), None);
                    prop_assert_eq!(arena.len(), before);
                }
                // Occasional window close: drain frees everything.
                _ if pick % 11 == 0 => {
                    arena.drain_dense(&mut drained);
                    prop_assert_eq!(drained.len(), live.len());
                    stale.extend(live.drain(..).map(|(h, _)| h));
                }
                _ => {}
            }
            // The aliasing invariants, after every single op.
            prop_assert_eq!(arena.len(), live.len());
            for &(handle, value) in &live {
                prop_assert_eq!(arena.get(handle).copied(), Some(value));
            }
            for &handle in &stale {
                prop_assert!(arena.get(handle).is_none(), "stale handle resolved");
            }
            prop_assert!(arena.get(SlotHandle::DEAD).is_none());
        }
    }

    /// Demand distributions: survival is monotone non-increasing and
    /// sampling stays within the window.
    #[test]
    fn demand_survival_monotone(mu in 1.0f64..3.5, sigma in 0.3f64..2.5, seed in 0u64..50) {
        let d = Demand::paper_normal(mu, sigma);
        let mut prev = f64::INFINITY;
        for i in 0..=40 {
            let p = 1.0 + 4.0 * i as f64 / 40.0;
            let s = d.survival(p);
            prop_assert!(s <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = d.sample(&mut rng);
            prop_assert!((1.0..=5.0).contains(&v));
        }
    }

    /// Grid round-trip: every cell's centre maps back to the cell, and
    /// every point maps into a cell whose rect contains it.
    #[test]
    fn grid_roundtrip(nx in 1u32..30, ny in 1u32..30, x in 0.0f64..100.0, y in 0.0f64..100.0) {
        let grid = GridSpec::new(Rect::square(100.0), nx, ny);
        {
            let cell = grid.cell_of(Point::new(x, y));
            prop_assert!(grid.cell_rect(cell).contains(Point::new(x, y)));
        }
        for cell in grid.cells().take(16) {
            prop_assert_eq!(grid.cell_of(grid.cell_center(cell)), cell);
        }
    }
}

/// Non-proptest statistical check: valuations are drawn from a smooth
/// spatial field while `GroundTruth::demands` holds each cell's
/// cell-centre aggregate (the probe's view). On a grid finer than the
/// field's correlation length the two must agree closely per cell.
#[test]
fn generated_valuations_match_declared_demand() {
    let world: GroundTruth = SyntheticConfig::paper_default()
        .with_num_workers(100)
        .with_num_tasks(60_000)
        .with_periods(20)
        .with_grid_side(16) // 6.25-unit cells < 12.5-unit field lattice
        .build(17);
    world.validate().unwrap();
    let mut checked = 0usize;
    for cell in 0..world.grid.num_cells() {
        let vals: Vec<f64> = world
            .periods
            .iter()
            .flat_map(|p| &p.tasks)
            .filter(|t| t.cell.index() == cell)
            .map(|t| t.valuation)
            .collect();
        if vals.len() < 800 {
            continue; // sparse peripheral cell: skip the statistical check
        }
        checked += 1;
        for price in [1.5, 2.25, 3.0] {
            let emp = vals.iter().filter(|&&v| v > price).count() as f64 / vals.len() as f64;
            let want = world.demands[cell].survival(price);
            // Within-cell field variation + sampling noise: a modest band.
            assert!(
                (emp - want).abs() < 0.12,
                "cell {cell} price {price}: empirical {emp} vs declared {want}"
            );
        }
    }
    assert!(checked >= 10, "only {checked} cells had enough samples");
}
