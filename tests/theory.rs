//! Executable checks of the paper's theoretical claims on concrete
//! instances: Theorem 4's `ALG ≥ OPT/(e·G)` bound for base pricing,
//! Lemma 9's diminishing increments (on the concave hull), Theorem 8's
//! submodularity of the supply-set function, and the MHR fact
//! `S(p_m) ≥ 1/e` the Theorem-4 proof leans on (Fact 2).

use maps::core::prelude::*;
use maps::market::{myerson_reserve_continuous, Demand, DemandDistribution, PriceLadder, UcbStats};
use maps::matching::expected_total_revenue_exact;

/// Fact 2 (Appendix B.3): for MHR demand, the survival probability at the
/// Myerson reserve price is at least 1/e.
#[test]
fn fact2_survival_at_reserve_at_least_inv_e() {
    for demand in [
        Demand::paper_normal(1.5, 0.6),
        Demand::paper_normal(2.0, 1.0),
        Demand::paper_normal(3.0, 1.8),
        Demand::paper_exponential(0.5),
        Demand::paper_exponential(1.5),
    ] {
        let (support_lo, support_hi) = demand.support();
        // The reserve over the FULL support (Fact 2's setting).
        let (p_m, _) = myerson_reserve_continuous(&demand, support_lo, support_hi, 1e-9);
        let s = demand.survival(p_m);
        assert!(
            s >= 1.0 / std::f64::consts::E - 1e-6,
            "{demand:?}: S(p_m={p_m}) = {s} < 1/e"
        );
    }
}

/// Theorem 4: the expected revenue of the flat base price is at least
/// `OPT/(e·G)` where OPT optimizes one price per grid. Verified exactly
/// on the running example (G = 16; both sides by possible-world
/// enumeration over the Table-1 price set).
#[test]
fn theorem4_base_price_bound_on_running_example() {
    let ex = RunningExample::new();
    let g = ex.grid.num_cells() as f64;
    let price_set = [1.0, 2.0, 3.0];

    let expected = |prices: [f64; 3]| {
        expected_total_revenue_exact(
            &ex.graph,
            &ex.weights(prices),
            &RunningExample::accept_probs(prices),
        )
    };

    // OPT over per-grid prices (grids 9 and 11 independently).
    let mut opt = f64::NEG_INFINITY;
    for p9 in price_set {
        for p11 in price_set {
            opt = opt.max(expected([p9, p9, p11]));
        }
    }

    // ALG: the best *flat* price over the same set is an upper bound for
    // what base pricing posts; the theorem must hold even for the WORST
    // flat price chosen from per-grid Myerson averages. Use the actual
    // base-pricing rule: average of per-grid argmax rungs. All grids share
    // Table 1 → p_m = 2 everywhere → p_b = 2.
    let alg = expected([2.0, 2.0, 2.0]);
    assert!(
        alg >= opt / (std::f64::consts::E * g),
        "ALG {alg} < OPT/(eG) = {}",
        opt / (std::f64::consts::E * g)
    );
    // The bound is loose: the flat price actually achieves > 90 % here.
    assert!(alg > 0.9 * opt / 1.05);
}

/// Lemma 9 (with the concave-hull correction of DESIGN.md §4.10): the
/// per-grid marginal gains MAPS consumes from the heap are non-increasing
/// along each grid's admission sequence.
#[test]
fn lemma9_hull_increments_nonincreasing() {
    let ladder = PriceLadder::paper_default();
    let mut stats = UcbStats::new(ladder.len());
    for (idx, s) in [0.95, 0.8, 0.5, 0.15].iter().enumerate() {
        stats.observe_batch(idx, 100_000, (s * 100_000f64) as u64);
    }
    // Several distance profiles, including adversarial near-uniform ones.
    for dists in [
        vec![2.0, 1.5, 1.0, 0.5],
        vec![1.0; 8],
        vec![5.0, 0.3, 0.3, 0.3, 0.3],
        vec![3.0, 2.9, 2.8, 0.1],
    ] {
        let lf = LFunction::new(dists.clone());
        let f = |n: usize| -> f64 {
            lf.maximize(n, &stats, &ladder, false)
                .map(|m| m.l_hat)
                .unwrap_or(0.0)
        };
        // Concave hull of f(0..=len): increments along the hull must be
        // non-increasing by construction; verify our lookahead reproduces
        // the hull's first segment from every starting point.
        let n_max = dists.len();
        let mut hull_gain_prev = f64::INFINITY;
        let mut n = 0usize;
        while n < n_max {
            // best amortized gain from n (what push_next computes)
            let mut best = 0.0f64;
            let mut best_m = n + 1;
            for m in (n + 1)..=n_max {
                let amortized = (f(m) - f(n)) / (m - n) as f64;
                if amortized > best + 1e-12 {
                    best = amortized;
                    best_m = m;
                }
            }
            if best <= 0.0 {
                break;
            }
            assert!(
                best <= hull_gain_prev + 1e-9,
                "hull increments increased at n={n}: {best} > {hull_gain_prev} ({dists:?})"
            );
            hull_gain_prev = best;
            n = best_m;
        }
    }
}

/// Theorem 8's engine: the per-grid value `max_p L(n, p)` is concave on
/// the hull and monotone in `n`, making the worker-set function
/// submodular — checked here directly as diminishing returns in `n` after
/// hull-smoothing, plus plain monotonicity.
#[test]
fn theorem8_monotone_value_in_supply() {
    let ladder = PriceLadder::paper_default();
    let mut stats = UcbStats::new(ladder.len());
    for (idx, s) in [0.9, 0.7, 0.45, 0.12].iter().enumerate() {
        stats.observe_batch(idx, 100_000, (s * 100_000f64) as u64);
    }
    let lf = LFunction::new(vec![2.5, 2.0, 1.5, 1.0, 0.5, 0.25]);
    let mut prev = 0.0;
    for n in 0..=7 {
        let v = lf
            .maximize(n, &stats, &ladder, false)
            .map(|m| m.l_hat)
            .unwrap_or(0.0);
        assert!(v + 1e-12 >= prev, "value decreased at n={n}");
        prev = v;
    }
}

/// End-to-end non-stationarity: when demand collapses mid-run, MAPS with
/// the Sec.-4.2.2 change detector recovers at least as much revenue as
/// MAPS that keeps averaging stale statistics.
#[test]
fn change_detection_helps_after_demand_shift() {
    use maps::core::{MapsConfig, MapsStrategy};
    use maps::prelude::*;

    let world_cfg = |seed: u64| {
        SyntheticConfig {
            num_workers: 400,
            num_tasks: 4_000,
            periods: 120,
            grid_side: 4,
            demand_shift: Some(DemandShift {
                at_fraction: 0.4,
                delta_mu: -1.2, // market turns cheap mid-run
            }),
            ..SyntheticConfig::paper_default()
        }
        .build(seed)
    };

    let run = |seed: u64, window: Option<u64>| -> f64 {
        let world = world_cfg(seed);
        let cells = world.grid.num_cells();
        let maps = MapsStrategy::new(
            cells,
            PriceLadder::paper_default(),
            MapsConfig {
                change_window: window,
                ..MapsConfig::default()
            },
        );
        Simulation::with_strategy(world, Box::new(maps))
            .run()
            .total_revenue
    };

    let mut with_det = 0.0;
    let mut without = 0.0;
    for seed in 0..4 {
        with_det += run(seed, Some(150));
        without += run(seed, None);
    }
    assert!(
        with_det > 0.97 * without,
        "change detection should not hurt after a shift: {with_det} vs {without}"
    );
}
