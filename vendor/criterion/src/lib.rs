//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by the
//! workspace's benches: `Criterion` with `bench_function` /
//! `benchmark_group` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros and a `Bencher` whose
//! `iter` auto-calibrates iteration counts. There is no statistical
//! model — each benchmark reports the median and min of `sample_size`
//! wall-clock samples, which is plenty to compare kernels in CI logs.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement configuration plus result sink.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets how many samples to take.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for CLI compatibility (`cargo bench -- <filter>` is not
    /// implemented in this shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_benchmark(self, name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Overrides the sample count for subsequent benches in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Drives the closure under measurement.
pub struct Bencher<'m> {
    /// Nanoseconds per iteration of each sample (output).
    samples_ns: &'m mut Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measures `routine`, auto-calibrating the per-sample iteration
    /// count from the warm-up phase.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, recording the
        // iteration rate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Split the measurement budget into `sample_size` samples.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.2} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

fn run_benchmark<F>(criterion: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut samples_ns = Vec::with_capacity(criterion.sample_size);
    let mut bencher = Bencher {
        samples_ns: &mut samples_ns,
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        sample_size: criterion.sample_size,
    };
    f(&mut bencher);
    if samples_ns.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples_ns.sort_by(f64::total_cmp);
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    let mut line = String::new();
    let _ = write!(
        line,
        "{name:<50} median {}   [min {} .. max {}]",
        format_ns(median),
        format_ns(min),
        format_ns(max),
    );
    println!("{line}");
}

/// Declares a group of benchmark functions; supports both the plain
/// form `criterion_group!(benches, f, g)` and the struct form with
/// `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_samples() {
        let mut criterion = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(4);
        // Must not panic and must run the routine.
        let mut runs = 0u64;
        criterion.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("50x500").to_string(), "50x500");
    }
}
