//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` bindings,
//! range / tuple / `collection::vec` / `bool::weighted` strategies,
//! `prop_map` / `prop_flat_map` combinators and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test seed (the hash of the test name), so failures reproduce
//! exactly.
//!
//! ## Shrinking
//!
//! A failing case is **shrunk** before being reported: the runner asks
//! the strategy for simpler candidate values ([`strategy::Strategy::shrink`]),
//! re-runs the test on each, adopts the first candidate that still
//! fails and repeats until no candidate fails. Scalars shrink by
//! binary search toward the range minimum (for a monotone predicate
//! this converges to the exact failure boundary in `O(log²)` runs);
//! vectors shrink by length (cut to the minimum, halve, drop single
//! elements) and then element-wise; tuples shrink component-wise.
//! `prop_map` / `prop_flat_map` outputs do not shrink (the combinator
//! cannot invert the mapping), so a mapped failure is reported as
//! generated. The final panic message contains the minimal failing
//! case and the number of shrink steps taken.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes simpler values derived from a failing `value`,
        /// boldest simplification first. The runner adopts the first
        /// candidate that still fails and calls `shrink` again on it;
        /// returning an empty vector (the default) ends shrinking.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        ///
        /// Mapped values do not shrink: the combinator cannot invert
        /// `f` to recover the base value a candidate came from.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it. Like [`Strategy::prop_map`], the result
        /// does not shrink.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let inner = (self.f)(self.base.generate(rng));
            inner.generate(rng)
        }
    }

    /// Binary-search shrink kernel for integers: candidates from
    /// `value` toward `min` are `[min, v − d/2, v − d/4, …, v − 1]`
    /// for `d = v − min` — bold jumps first. For a monotone predicate,
    /// adopting the first still-failing candidate each round converges
    /// to the exact failure boundary in `O(log² d)` runs.
    mod int_shrink {
        macro_rules! impl_shrink_toward {
            ($($name:ident : $t:ty),*) => {$(
                pub(crate) fn $name(min: $t, value: $t) -> Vec<$t> {
                    if value <= min {
                        return Vec::new();
                    }
                    let mut out = vec![min];
                    let mut jump = (value - min) / 2;
                    while jump > 0 {
                        out.push(value - jump);
                        jump /= 2;
                    }
                    out
                }
            )*};
        }
        impl_shrink_toward!(
            u8s: u8, u16s: u16, u32s: u32, u64s: u64, usizes: usize, i32s: i32
        );
    }

    macro_rules! impl_int_range {
        ($($t:ty => $helper:ident),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }

                /// Binary-search candidates toward the range start:
                /// `[start, v − d/2, v − d/4, …, v − 1]`.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink::$helper(self.start, *value)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $t
                }

                /// Binary-search candidates toward the range start.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink::$helper(*self.start(), *value)
                }
            }
        )*};
    }

    impl_int_range!(u8 => u8s, u16 => u16s, u32 => u32s, u64 => u64s, usize => usizes, i32 => i32s);

    /// Binary-search float candidates from `value` toward `start`,
    /// stopping once the step no longer changes the value.
    fn shrink_f64_toward(start: f64, value: f64) -> Vec<f64> {
        let d = value - start;
        // NaN distances fall through to the empty candidate list too.
        if d <= 0.0 || !d.is_finite() {
            return Vec::new();
        }
        let mut out = vec![start];
        let mut jump = d / 2.0;
        for _ in 0..32 {
            let cand = value - jump;
            if cand <= start || cand >= value {
                break;
            }
            out.push(cand);
            jump /= 2.0;
        }
        out
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }

        fn shrink(&self, value: &f64) -> Vec<f64> {
            shrink_f64_toward(self.start, *value)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.next_f64() * (end - start)
        }

        fn shrink(&self, value: &f64) -> Vec<f64> {
            shrink_f64_toward(*self.start(), *value)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                /// Component-wise shrinking: each component proposes
                /// its candidates with the others held fixed.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// `Just`-style constant strategy (no shrinking: the constant is
    /// already minimal).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as the length spec of [`vec`]: a fixed length
    /// or a range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;

        /// The smallest admissible length (shrinking never goes below
        /// it, so shrunk cases stay inside the strategy's domain).
        fn min_len(&self) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }

        fn min_len(&self) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }

        fn min_len(&self) -> usize {
            self.start
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            start + (rng.next_u64() as usize) % (end - start + 1)
        }

        fn min_len(&self) -> usize {
            *self.start()
        }
    }

    /// Strategy for `Vec<S::Value>` with the given element strategy and
    /// length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Length shrinks first (cut to the minimum length, halve the
        /// removable suffix, drop each single element), then element
        /// shrinks (a few boldest candidates per position).
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.min_len();
            let n = value.len();
            let mut out = Vec::new();
            if n > min {
                out.push(value[..min].to_vec());
                let half = min + (n - min) / 2;
                if half > min && half < n {
                    out.push(value[..half].to_vec());
                }
                for i in 0..n {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for (i, element) in value.iter().enumerate() {
                for cand in self.element.shrink(element).into_iter().take(4) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Weighted coin: `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.p
        }

        /// `false` is the canonical simpler value.
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Test-runner plumbing: config, deterministic RNG, case execution and
/// failure shrinking.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Per-invocation configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases generated per test.
        pub cases: u32,
        /// Upper bound on candidate evaluations while shrinking one
        /// failure (a safety stop for pathological strategies).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why one test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assume!` premise was unmet: skip the case.
        Reject,
        /// An assertion failed (or the body panicked) with this message.
        Fail(String),
    }

    /// Outcome of running the test body on one case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs the test body on one case, converting raw panics (plain
    /// `assert!` or a panicking library call) into
    /// [`TestCaseError::Fail`] so shrinking also works for them.
    pub fn run_protected<V, F>(run: &F, value: &V) -> TestCaseResult
    where
        F: Fn(&V) -> TestCaseResult,
    {
        match catch_unwind(AssertUnwindSafe(|| run(value))) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic with non-string payload".to_string());
                Err(TestCaseError::Fail(format!("panic: {msg}")))
            }
        }
    }

    /// Shrinks a failing `value`: repeatedly asks the strategy for
    /// candidates, adopts the first one that still fails and restarts
    /// from it; stops when no candidate fails (a local minimum) or the
    /// attempt budget runs out. Returns the minimal value, its failure
    /// message and the number of adopted shrink steps.
    pub fn shrink_failure<S, F>(
        strategy: &S,
        mut value: S::Value,
        mut message: String,
        run: &F,
        max_attempts: u32,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        S::Value: Clone,
        F: Fn(&S::Value) -> TestCaseResult,
    {
        let mut steps = 0u32;
        let mut attempts = 0u32;
        'adopt: loop {
            for cand in strategy.shrink(&value) {
                if attempts >= max_attempts {
                    break 'adopt;
                }
                attempts += 1;
                if let Err(TestCaseError::Fail(msg)) = run_protected(run, &cand) {
                    value = cand;
                    message = msg;
                    steps += 1;
                    continue 'adopt;
                }
            }
            break;
        }
        (value, message, steps)
    }

    /// Generates and runs `config.cases` cases of `run` against
    /// `strategy`; on the first failure, shrinks it and panics with the
    /// minimal failing case. The [`crate::proptest!`] macro expands to
    /// a call of this function.
    pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: &S, run: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(&S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::deterministic(fnv1a(name));
        for case in 0..config.cases {
            let value = strategy.generate(&mut rng);
            match run_protected(&run, &value) {
                Ok(()) | Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    let (minimal, message, steps) =
                        shrink_failure(strategy, value, message, &run, config.max_shrink_iters);
                    panic!(
                        "proptest {name}: case {case} failed; \
                         minimal failing case after {steps} shrink steps: {minimal:?}\n{message}"
                    );
                }
            }
        }
    }

    /// Deterministic xoshiro-style generator used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically (callers derive the seed from the
        /// test name so every test has its own reproducible stream).
        pub fn deterministic(seed: u64) -> Self {
            Self {
                state: seed | 0x9E37_79B9_0000_0001,
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property; failures are shrunk to a minimal case.
///
/// Expands to an early `Err(TestCaseError::Fail)` return, so it may
/// only be used inside a [`proptest!`] body (or any closure returning
/// [`test_runner::TestCaseResult`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?} == {:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?} != {:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// item becomes a `#[test]` running `cases` deterministic cases, with
/// failures shrunk to a minimal case before reporting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($(($strategy),)*);
            $crate::test_runner::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                &__strategy,
                |__case| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(__case);
                    { $body }
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{shrink_failure, TestCaseError, TestCaseResult};
    use std::cell::Cell;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -1.0f64..=4.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.0..=4.5).contains(&x));
        }

        #[test]
        fn flat_map_and_vec_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10) {
            prop_assume!(a >= 5);
            prop_assert!(a >= 5);
        }
    }

    #[test]
    fn weighted_bool_rate() {
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        let strat = crate::bool::weighted(0.25);
        let hits = (0..20_000)
            .filter(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    /// Fails iff `v >= threshold`; counts how many times it ran.
    fn boundary_pred(threshold: u32, counter: &Cell<u32>) -> impl Fn(&u32) -> TestCaseResult + '_ {
        move |&v| {
            counter.set(counter.get() + 1);
            if v >= threshold {
                Err(TestCaseError::Fail(format!("{v} >= {threshold}")))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn int_shrink_candidates_are_bold_to_timid() {
        use crate::strategy::Strategy;
        let cands = (0u32..1000).shrink(&100);
        assert_eq!(cands.first(), Some(&0), "boldest jump first");
        assert_eq!(cands.last(), Some(&99), "v-1 last");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!((0u32..1000).shrink(&0).is_empty(), "minimum is terminal");
    }

    #[test]
    fn int_shrink_binary_searches_to_the_boundary() {
        // Monotone predicate with boundary 57: shrinking from 923 must
        // land exactly on 57 in O(log²) runs, not the ~866 a linear
        // descent would take.
        let runs = Cell::new(0);
        let pred = boundary_pred(57, &runs);
        let (min, msg, steps) = shrink_failure(&(0u32..1000), 923, "seed".into(), &pred, 4096);
        assert_eq!(min, 57);
        assert!(msg.contains("57 >= 57"));
        assert!(steps >= 1);
        assert!(
            runs.get() < 120,
            "binary search took {} runs (linear would be ~866)",
            runs.get()
        );
    }

    #[test]
    fn f64_shrink_converges_toward_start() {
        let runs = Cell::new(0);
        let pred = |v: &f64| -> TestCaseResult {
            runs.set(runs.get() + 1);
            if *v >= 2.5 {
                Err(TestCaseError::Fail(format!("{v} >= 2.5")))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(&(0.0f64..10.0), 9.75, "seed".into(), &pred, 4096);
        assert!(min >= 2.5, "shrunk value must still fail");
        assert!(min - 2.5 < 1e-6, "converged to the boundary, got {min}");
    }

    #[test]
    fn vec_shrink_minimizes_length_and_elements() {
        use crate::collection::vec;
        // Fails iff any element ≥ 10: minimal case is the single
        // element [10].
        let pred = |v: &Vec<u32>| -> TestCaseResult {
            if v.iter().any(|&x| x >= 10) {
                Err(TestCaseError::Fail("has a big element".into()))
            } else {
                Ok(())
            }
        };
        let strat = vec(0u32..100, 0usize..=8);
        let start = std::vec![55, 3, 97, 12, 4];
        let (min, _, _) = shrink_failure(&strat, start, "seed".into(), &pred, 4096);
        assert_eq!(min, std::vec![10]);
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        use crate::collection::vec;
        let pred = |_: &Vec<u32>| -> TestCaseResult { Err(TestCaseError::Fail("always".into())) };
        let strat = vec(0u32..100, 3usize..=8);
        let (min, _, _) = shrink_failure(&strat, std::vec![9, 8, 7, 6, 5], "s".into(), &pred, 4096);
        assert_eq!(min.len(), 3, "never shrinks below the length spec");
        assert!(
            min.iter().all(|&x| x == 0),
            "elements shrink to the range start"
        );
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        // Fails iff a + b >= 30; the minimum is on the boundary.
        let pred = |&(a, b): &(u32, u32)| -> TestCaseResult {
            if a + b >= 30 {
                Err(TestCaseError::Fail(format!("{a}+{b}")))
            } else {
                Ok(())
            }
        };
        let strat = (0u32..100, 0u32..100);
        let (min, _, _) = shrink_failure(&strat, (80, 90), "seed".into(), &pred, 4096);
        assert_eq!(min.0 + min.1, 30, "landed on the boundary: {min:?}");
    }

    #[test]
    fn raw_panics_are_caught_and_shrunk() {
        // The body panics (no prop_assert); shrinking must still work.
        let pred = |&v: &u32| -> TestCaseResult {
            if v >= 21 {
                panic!("boom at {v}");
            }
            Ok(())
        };
        let run = |v: &u32| crate::test_runner::run_protected(&pred, v);
        let (min, msg, _) = shrink_failure(&(0u32..1000), 800, "seed".into(), &run, 4096);
        assert_eq!(min, 21);
        assert!(msg.contains("boom at 21"), "message: {msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// End-to-end: the macro reports the *minimal* failing case.
        /// The predicate fails for v ≥ 57, so the shrunk report must
        /// name exactly `(57,)`.
        #[test]
        #[should_panic(expected = "minimal failing case")]
        fn macro_reports_minimal_case(v in 0u32..1000) {
            prop_assert!(v < 57, "too big: {}", v);
        }

        #[test]
        #[should_panic(expected = "(57,)")]
        fn macro_shrinks_to_the_boundary(v in 0u32..1000) {
            prop_assert!(v < 57);
        }
    }
}
