//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` bindings,
//! range / tuple / `collection::vec` / `bool::weighted` strategies,
//! `prop_map` / `prop_flat_map` combinators and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test seed (the hash of the test name), so failures reproduce
//! exactly. **There is no shrinking**: a failing case reports its
//! values via the assertion message only.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let inner = (self.f)(self.base.generate(rng));
            inner.generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.next_f64() * (end - start)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// `Just`-style constant strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as the length spec of [`vec`]: a fixed length
    /// or a range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            start + (rng.next_u64() as usize) % (end - start + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with the given element strategy and
    /// length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Weighted coin: `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.p
        }
    }
}

/// Test-runner plumbing: config and deterministic RNG.
pub mod test_runner {
    /// Per-invocation configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases generated per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xoshiro-style generator used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically (callers derive the seed from the
        /// test name so every test has its own reproducible stream).
        pub fn deterministic(seed: u64) -> Self {
            Self {
                state: seed | 0x9E37_79B9_0000_0001,
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// item becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )*
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -1.0f64..=4.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.0..=4.5).contains(&x));
        }

        #[test]
        fn flat_map_and_vec_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10) {
            prop_assume!(a >= 5);
            prop_assert!(a >= 5);
        }
    }

    #[test]
    fn weighted_bool_rate() {
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        let strat = crate::bool::weighted(0.25);
        let hits = (0..20_000)
            .filter(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
