//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` bindings,
//! range / tuple / `collection::vec` / `bool::weighted` strategies,
//! `prop_map` / `prop_flat_map` combinators and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test seed (the hash of the test name), so failures reproduce
//! exactly.
//!
//! ## Shrinking
//!
//! A failing case is **shrunk** before being reported. Strategies draw
//! [value trees](strategy::ValueTree) — the value under test plus the
//! recipe for simplifying it — and the runner repeatedly asks the
//! failing tree for simpler candidate trees, re-runs the test on each
//! candidate's value, adopts the first that still fails and repeats
//! until no candidate fails. Scalars shrink by binary search toward
//! the range minimum (for a monotone predicate this converges to the
//! exact failure boundary in `O(log²)` runs); vectors shrink by length
//! (cut to the minimum, halve, drop single elements) and then
//! element-wise; tuples shrink component-wise.
//!
//! Because candidates are trees rather than bare values, shrinking
//! composes through the combinators (the PR-7 fix — previously mapped
//! outputs did not shrink at all): a `prop_map` tree shrinks by
//! shrinking the base tree it captured and re-applying the mapping,
//! and a `prop_flat_map` tree shrinks the base value first
//! (regenerating the derived strategy's draw from an RNG snapshot so
//! candidates stay deterministic), then the derived value with the
//! base held fixed. The final panic message contains the minimal
//! failing case and the number of shrink steps taken.

#![warn(missing_docs)]

/// Strategy trait, value trees and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generated value plus the recipe for simplifying it.
    ///
    /// Where the upstream crate materializes shrink candidates lazily,
    /// this stand-in keeps the same contract in eager form:
    /// [`current`](ValueTree::current) is the value under test and
    /// [`simplify`](ValueTree::simplify) proposes whole simpler
    /// *trees*, boldest first. Candidates being trees — not bare
    /// values — is what lets shrinking compose through `prop_map` /
    /// `prop_flat_map`: a combinator tree shrinks its captured base
    /// tree and re-derives its output, which the old bare-value
    /// `shrink(&value)` API could not express (it would have had to
    /// invert the mapping).
    pub trait ValueTree {
        /// The tested type.
        type Value;

        /// The value this tree currently represents.
        fn current(&self) -> Self::Value;

        /// Simpler candidate trees derived from this one, boldest
        /// simplification first. The runner adopts the first candidate
        /// whose value still fails and calls `simplify` again on it;
        /// returning an empty vector ends shrinking.
        fn simplify(&self) -> Vec<Self>
        where
            Self: Sized;
    }

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// The value-tree type [`new_tree`](Strategy::new_tree) draws.
        type Tree: ValueTree<Value = Self::Value> + Clone;

        /// Draws one value together with its shrink recipe.
        fn new_tree(&self, rng: &mut TestRng) -> Self::Tree;

        /// Draws one bare value (no shrink recipe).
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.new_tree(rng).current()
        }

        /// Maps generated values through `f`.
        ///
        /// The mapped tree captures the base tree and re-applies `f`
        /// to every base candidate, so mapped failures minimize
        /// exactly as well as base failures do.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                base: self,
                f: Rc::new(f),
            }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        ///
        /// Shrinks at both levels: base-value candidates first (each
        /// re-derives the inner strategy and re-draws it from a
        /// snapshot of the RNG taken at generation time, so shrinking
        /// is deterministic), then inner candidates with the base held
        /// fixed.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap {
                base: self,
                f: Rc::new(f),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: Rc<F>,
    }

    impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
        type Value = O;
        type Tree = MapTree<B::Tree, F>;

        fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
            MapTree {
                base: self.base.new_tree(rng),
                f: Rc::clone(&self.f),
            }
        }
    }

    /// Tree for [`Map`]: the captured base tree plus the mapping,
    /// re-applied to every base candidate.
    pub struct MapTree<T, F> {
        base: T,
        f: Rc<F>,
    }

    impl<T: Clone, F> Clone for MapTree<T, F> {
        fn clone(&self) -> Self {
            Self {
                base: self.base.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<T: ValueTree + Clone, O, F: Fn(T::Value) -> O> ValueTree for MapTree<T, F> {
        type Value = O;

        fn current(&self) -> O {
            (self.f)(self.base.current())
        }

        fn simplify(&self) -> Vec<Self> {
            self.base
                .simplify()
                .into_iter()
                .map(|base| Self {
                    base,
                    f: Rc::clone(&self.f),
                })
                .collect()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: Rc<F>,
    }

    impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
        type Value = S::Value;
        type Tree = FlatMapTree<B::Tree, S, F>;

        fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
            let base = self.base.new_tree(rng);
            // Snapshot the RNG *before* the inner draw: when a base
            // candidate is adopted during shrinking, the derived
            // strategy is re-drawn from this snapshot, so the inner
            // value changes only through the base value.
            let rng_snapshot = rng.clone();
            let inner = (self.f)(base.current()).new_tree(rng);
            FlatMapTree {
                base,
                inner,
                f: Rc::clone(&self.f),
                rng_snapshot,
            }
        }
    }

    /// Tree for [`FlatMap`]: shrinks the base tree first (re-deriving
    /// the inner tree from the RNG snapshot), then the inner tree with
    /// the base held fixed.
    pub struct FlatMapTree<T, S: Strategy, F> {
        base: T,
        inner: S::Tree,
        f: Rc<F>,
        rng_snapshot: TestRng,
    }

    impl<T: Clone, S: Strategy, F> Clone for FlatMapTree<T, S, F> {
        fn clone(&self) -> Self {
            Self {
                base: self.base.clone(),
                inner: self.inner.clone(),
                f: Rc::clone(&self.f),
                rng_snapshot: self.rng_snapshot.clone(),
            }
        }
    }

    impl<T, S, F> ValueTree for FlatMapTree<T, S, F>
    where
        T: ValueTree + Clone,
        S: Strategy,
        F: Fn(T::Value) -> S,
    {
        type Value = S::Value;

        fn current(&self) -> S::Value {
            self.inner.current()
        }

        fn simplify(&self) -> Vec<Self> {
            let mut out = Vec::new();
            for base in self.base.simplify() {
                let mut rng = self.rng_snapshot.clone();
                let inner = (self.f)(base.current()).new_tree(&mut rng);
                out.push(Self {
                    base,
                    inner,
                    f: Rc::clone(&self.f),
                    rng_snapshot: self.rng_snapshot.clone(),
                });
            }
            for inner in self.inner.simplify() {
                out.push(Self {
                    base: self.base.clone(),
                    inner,
                    f: Rc::clone(&self.f),
                    rng_snapshot: self.rng_snapshot.clone(),
                });
            }
            out
        }
    }

    /// Binary-search shrink kernel for integers: candidates from
    /// `value` toward `min` are `[min, v − d/2, v − d/4, …, v − 1]`
    /// for `d = v − min` — bold jumps first. For a monotone predicate,
    /// adopting the first still-failing candidate each round converges
    /// to the exact failure boundary in `O(log² d)` runs.
    mod int_shrink {
        macro_rules! impl_shrink_toward {
            ($($name:ident : $t:ty),*) => {$(
                pub(crate) fn $name(min: $t, value: $t) -> Vec<$t> {
                    if value <= min {
                        return Vec::new();
                    }
                    let mut out = vec![min];
                    let mut jump = (value - min) / 2;
                    while jump > 0 {
                        out.push(value - jump);
                        jump /= 2;
                    }
                    out
                }
            )*};
        }
        impl_shrink_toward!(
            u8s: u8, u16s: u16, u32s: u32, u64s: u64, usizes: usize, i32s: i32
        );
    }

    /// Value tree for integer-range strategies: the drawn value plus
    /// the range minimum it binary-searches toward.
    #[derive(Debug, Clone, Copy)]
    pub struct IntTree<T> {
        value: T,
        min: T,
    }

    impl<T> IntTree<T> {
        /// Tree representing `value`, shrinking toward `min`.
        pub fn new(min: T, value: T) -> Self {
            Self { value, min }
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty => $helper:ident),*) => {$(
            impl ValueTree for IntTree<$t> {
                type Value = $t;

                fn current(&self) -> $t {
                    self.value
                }

                /// Binary-search candidates toward the range start:
                /// `[start, v − d/2, v − d/4, …, v − 1]`.
                fn simplify(&self) -> Vec<Self> {
                    int_shrink::$helper(self.min, self.value)
                        .into_iter()
                        .map(|value| Self { value, min: self.min })
                        .collect()
                }
            }
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                type Tree = IntTree<$t>;

                fn new_tree(&self, rng: &mut TestRng) -> IntTree<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    let value = self.start + (rng.next_u64() % span) as $t;
                    IntTree::new(self.start, value)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                type Tree = IntTree<$t>;

                fn new_tree(&self, rng: &mut TestRng) -> IntTree<$t> {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    let value = start + (rng.next_u64() % span) as $t;
                    IntTree::new(start, value)
                }
            }
        )*};
    }

    impl_int_range!(u8 => u8s, u16 => u16s, u32 => u32s, u64 => u64s, usize => usizes, i32 => i32s);

    /// Binary-search float candidates from `value` toward `start`,
    /// stopping once the step no longer changes the value.
    fn shrink_f64_toward(start: f64, value: f64) -> Vec<f64> {
        let d = value - start;
        // NaN distances fall through to the empty candidate list too.
        if d <= 0.0 || !d.is_finite() {
            return Vec::new();
        }
        let mut out = vec![start];
        let mut jump = d / 2.0;
        for _ in 0..32 {
            let cand = value - jump;
            if cand <= start || cand >= value {
                break;
            }
            out.push(cand);
            jump /= 2.0;
        }
        out
    }

    /// Value tree for `f64`-range strategies: the drawn value plus the
    /// range start it converges toward.
    #[derive(Debug, Clone, Copy)]
    pub struct F64Tree {
        value: f64,
        start: f64,
    }

    impl F64Tree {
        /// Tree representing `value`, shrinking toward `start`.
        pub fn new(start: f64, value: f64) -> Self {
            Self { value, start }
        }
    }

    impl ValueTree for F64Tree {
        type Value = f64;

        fn current(&self) -> f64 {
            self.value
        }

        fn simplify(&self) -> Vec<Self> {
            shrink_f64_toward(self.start, self.value)
                .into_iter()
                .map(|value| Self {
                    value,
                    start: self.start,
                })
                .collect()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        type Tree = F64Tree;

        fn new_tree(&self, rng: &mut TestRng) -> F64Tree {
            assert!(self.start < self.end, "empty range strategy");
            F64Tree::new(
                self.start,
                self.start + rng.next_f64() * (self.end - self.start),
            )
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        type Tree = F64Tree;

        fn new_tree(&self, rng: &mut TestRng) -> F64Tree {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            F64Tree::new(start, start + rng.next_f64() * (end - start))
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                type Tree = ($($name::Tree,)+);

                fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                    ($(self.$idx.new_tree(rng),)+)
                }
            }

            impl<$($name: ValueTree + Clone),+> ValueTree for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn current(&self) -> Self::Value {
                    ($(self.$idx.current(),)+)
                }

                /// Component-wise shrinking: each component proposes
                /// its candidates with the others held fixed.
                fn simplify(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.simplify() {
                            let mut next = self.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// `Just`-style constant strategy. It is its own value tree: the
    /// constant is already minimal, so there are no candidates.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        type Tree = Just<T>;

        fn new_tree(&self, _rng: &mut TestRng) -> Just<T> {
            self.clone()
        }
    }

    impl<T: Clone> ValueTree for Just<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }

        fn simplify(&self) -> Vec<Self> {
            Vec::new()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, ValueTree};
    use crate::test_runner::TestRng;

    /// Anything usable as the length spec of [`vec`]: a fixed length
    /// or a range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;

        /// The smallest admissible length (shrinking never goes below
        /// it, so shrunk cases stay inside the strategy's domain).
        fn min_len(&self) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }

        fn min_len(&self) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }

        fn min_len(&self) -> usize {
            self.start
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            start + (rng.next_u64() as usize) % (end - start + 1)
        }

        fn min_len(&self) -> usize {
            *self.start()
        }
    }

    /// Strategy for `Vec<S::Value>` with the given element strategy and
    /// length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        type Tree = VecTree<S::Tree>;

        fn new_tree(&self, rng: &mut TestRng) -> VecTree<S::Tree> {
            let n = self.len.pick(rng);
            VecTree::new(
                (0..n).map(|_| self.element.new_tree(rng)).collect(),
                self.len.min_len(),
            )
        }
    }

    /// Value tree for [`vec`]: one element tree per position, plus the
    /// minimum admissible length.
    #[derive(Debug, Clone)]
    pub struct VecTree<T> {
        elements: Vec<T>,
        min_len: usize,
    }

    impl<T> VecTree<T> {
        /// Tree over `elements` whose length never shrinks below
        /// `min_len`.
        pub fn new(elements: Vec<T>, min_len: usize) -> Self {
            Self { elements, min_len }
        }
    }

    impl<T: ValueTree + Clone> ValueTree for VecTree<T> {
        type Value = Vec<T::Value>;

        fn current(&self) -> Vec<T::Value> {
            self.elements.iter().map(T::current).collect()
        }

        /// Length shrinks first (cut to the minimum length, halve the
        /// removable suffix, drop each single element), then element
        /// shrinks (a few boldest candidates per position).
        fn simplify(&self) -> Vec<Self> {
            let min = self.min_len;
            let n = self.elements.len();
            let mut out = Vec::new();
            if n > min {
                out.push(Self::new(self.elements[..min].to_vec(), min));
                let half = min + (n - min) / 2;
                if half > min && half < n {
                    out.push(Self::new(self.elements[..half].to_vec(), min));
                }
                for i in 0..n {
                    let mut next = self.elements.clone();
                    next.remove(i);
                    out.push(Self::new(next, min));
                }
            }
            for (i, element) in self.elements.iter().enumerate() {
                for cand in element.simplify().into_iter().take(4) {
                    let mut next = self.elements.clone();
                    next[i] = cand;
                    out.push(Self::new(next, min));
                }
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::{Strategy, ValueTree};
    use crate::test_runner::TestRng;

    /// Weighted coin: `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        type Tree = BoolTree;

        fn new_tree(&self, rng: &mut TestRng) -> BoolTree {
            BoolTree {
                value: rng.next_f64() < self.p,
            }
        }
    }

    /// Value tree for booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolTree {
        value: bool,
    }

    impl ValueTree for BoolTree {
        type Value = bool;

        fn current(&self) -> bool {
            self.value
        }

        /// `false` is the canonical simpler value.
        fn simplify(&self) -> Vec<Self> {
            if self.value {
                vec![Self { value: false }]
            } else {
                Vec::new()
            }
        }
    }
}

/// Test-runner plumbing: config, deterministic RNG, case execution and
/// failure shrinking.
pub mod test_runner {
    use crate::strategy::{Strategy, ValueTree};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Per-invocation configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases generated per test.
        pub cases: u32,
        /// Upper bound on candidate evaluations while shrinking one
        /// failure (a safety stop for pathological strategies).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why one test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assume!` premise was unmet: skip the case.
        Reject,
        /// An assertion failed (or the body panicked) with this message.
        Fail(String),
    }

    /// Outcome of running the test body on one case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs the test body on one case, converting raw panics (plain
    /// `assert!` or a panicking library call) into
    /// [`TestCaseError::Fail`] so shrinking also works for them.
    pub fn run_protected<V, F>(run: &F, value: &V) -> TestCaseResult
    where
        F: Fn(&V) -> TestCaseResult,
    {
        match catch_unwind(AssertUnwindSafe(|| run(value))) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic with non-string payload".to_string());
                Err(TestCaseError::Fail(format!("panic: {msg}")))
            }
        }
    }

    /// Shrinks a failing value tree: repeatedly asks the tree for
    /// candidate trees, adopts the first one whose value still fails
    /// and restarts from it; stops when no candidate fails (a local
    /// minimum) or the attempt budget runs out. Returns the minimal
    /// value, its failure message and the number of adopted shrink
    /// steps.
    pub fn shrink_failure<T, F>(
        mut tree: T,
        mut message: String,
        run: &F,
        max_attempts: u32,
    ) -> (T::Value, String, u32)
    where
        T: ValueTree,
        F: Fn(&T::Value) -> TestCaseResult,
    {
        let mut steps = 0u32;
        let mut attempts = 0u32;
        'adopt: loop {
            for cand in tree.simplify() {
                if attempts >= max_attempts {
                    break 'adopt;
                }
                attempts += 1;
                let value = cand.current();
                if let Err(TestCaseError::Fail(msg)) = run_protected(run, &value) {
                    tree = cand;
                    message = msg;
                    steps += 1;
                    continue 'adopt;
                }
            }
            break;
        }
        (tree.current(), message, steps)
    }

    /// Generates and runs `config.cases` cases of `run` against
    /// `strategy`; on the first failure, shrinks its value tree and
    /// panics with the minimal failing case. The [`crate::proptest!`]
    /// macro expands to a call of this function.
    pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: &S, run: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(&S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::deterministic(fnv1a(name));
        for case in 0..config.cases {
            let tree = strategy.new_tree(&mut rng);
            let value = tree.current();
            match run_protected(&run, &value) {
                Ok(()) | Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    let (minimal, message, steps) =
                        shrink_failure(tree, message, &run, config.max_shrink_iters);
                    panic!(
                        "proptest {name}: case {case} failed; \
                         minimal failing case after {steps} shrink steps: {minimal:?}\n{message}"
                    );
                }
            }
        }
    }

    /// Deterministic xoshiro-style generator used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically (callers derive the seed from the
        /// test name so every test has its own reproducible stream).
        pub fn deterministic(seed: u64) -> Self {
            Self {
                state: seed | 0x9E37_79B9_0000_0001,
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property; failures are shrunk to a minimal case.
///
/// Expands to an early `Err(TestCaseError::Fail)` return, so it may
/// only be used inside a [`proptest!`] body (or any closure returning
/// [`test_runner::TestCaseResult`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?} == {:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?} != {:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// item becomes a `#[test]` running `cases` deterministic cases, with
/// failures shrunk to a minimal case before reporting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($(($strategy),)*);
            $crate::test_runner::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                &__strategy,
                |__case| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(__case);
                    { $body }
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::VecTree;
    use crate::prelude::*;
    use crate::strategy::{F64Tree, IntTree};
    use crate::test_runner::{shrink_failure, TestCaseError, TestCaseResult, TestRng};
    use std::cell::Cell;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -1.0f64..=4.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.0..=4.5).contains(&x));
        }

        #[test]
        fn flat_map_and_vec_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10) {
            prop_assume!(a >= 5);
            prop_assert!(a >= 5);
        }
    }

    #[test]
    fn weighted_bool_rate() {
        let mut rng = TestRng::deterministic(1);
        let strat = crate::bool::weighted(0.25);
        let hits = (0..20_000)
            .filter(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    /// Fails iff `v >= threshold`; counts how many times it ran.
    fn boundary_pred(threshold: u32, counter: &Cell<u32>) -> impl Fn(&u32) -> TestCaseResult + '_ {
        move |&v| {
            counter.set(counter.get() + 1);
            if v >= threshold {
                Err(TestCaseError::Fail(format!("{v} >= {threshold}")))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn int_shrink_candidates_are_bold_to_timid() {
        let cands: Vec<u32> = IntTree::new(0u32, 100)
            .simplify()
            .iter()
            .map(ValueTree::current)
            .collect();
        assert_eq!(cands.first(), Some(&0), "boldest jump first");
        assert_eq!(cands.last(), Some(&99), "v-1 last");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(
            IntTree::new(0u32, 0).simplify().is_empty(),
            "minimum is terminal"
        );
    }

    #[test]
    fn int_shrink_binary_searches_to_the_boundary() {
        // Monotone predicate with boundary 57: shrinking from 923 must
        // land exactly on 57 in O(log²) runs, not the ~866 a linear
        // descent would take.
        let runs = Cell::new(0);
        let pred = boundary_pred(57, &runs);
        let (min, msg, steps) = shrink_failure(IntTree::new(0u32, 923), "seed".into(), &pred, 4096);
        assert_eq!(min, 57);
        assert!(msg.contains("57 >= 57"));
        assert!(steps >= 1);
        assert!(
            runs.get() < 120,
            "binary search took {} runs (linear would be ~866)",
            runs.get()
        );
    }

    #[test]
    fn f64_shrink_converges_toward_start() {
        let runs = Cell::new(0);
        let pred = |v: &f64| -> TestCaseResult {
            runs.set(runs.get() + 1);
            if *v >= 2.5 {
                Err(TestCaseError::Fail(format!("{v} >= 2.5")))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(F64Tree::new(0.0, 9.75), "seed".into(), &pred, 4096);
        assert!(min >= 2.5, "shrunk value must still fail");
        assert!(min - 2.5 < 1e-6, "converged to the boundary, got {min}");
    }

    #[test]
    fn vec_shrink_minimizes_length_and_elements() {
        // Fails iff any element ≥ 10: minimal case is the single
        // element [10].
        let pred = |v: &Vec<u32>| -> TestCaseResult {
            if v.iter().any(|&x| x >= 10) {
                Err(TestCaseError::Fail("has a big element".into()))
            } else {
                Ok(())
            }
        };
        let start = VecTree::new(
            [55, 3, 97, 12, 4]
                .into_iter()
                .map(|v| IntTree::new(0u32, v))
                .collect(),
            0,
        );
        let (min, _, _) = shrink_failure(start, "seed".into(), &pred, 4096);
        assert_eq!(min, std::vec![10]);
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let pred = |_: &Vec<u32>| -> TestCaseResult { Err(TestCaseError::Fail("always".into())) };
        let start = VecTree::new(
            [9, 8, 7, 6, 5]
                .into_iter()
                .map(|v| IntTree::new(0u32, v))
                .collect(),
            3,
        );
        let (min, _, _) = shrink_failure(start, "s".into(), &pred, 4096);
        assert_eq!(min.len(), 3, "never shrinks below the length spec");
        assert!(
            min.iter().all(|&x| x == 0),
            "elements shrink to the range start"
        );
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        // Fails iff a + b >= 30; the minimum is on the boundary.
        let pred = |&(a, b): &(u32, u32)| -> TestCaseResult {
            if a + b >= 30 {
                Err(TestCaseError::Fail(format!("{a}+{b}")))
            } else {
                Ok(())
            }
        };
        let start = (IntTree::new(0u32, 80), IntTree::new(0u32, 90));
        let (min, _, _) = shrink_failure(start, "seed".into(), &pred, 4096);
        assert_eq!(min.0 + min.1, 30, "landed on the boundary: {min:?}");
    }

    #[test]
    fn raw_panics_are_caught_and_shrunk() {
        // The body panics (no prop_assert); shrinking must still work.
        let pred = |&v: &u32| -> TestCaseResult {
            if v >= 21 {
                panic!("boom at {v}");
            }
            Ok(())
        };
        let run = |v: &u32| crate::test_runner::run_protected(&pred, v);
        let (min, msg, _) = shrink_failure(IntTree::new(0u32, 800), "seed".into(), &run, 4096);
        assert_eq!(min, 21);
        assert!(msg.contains("boom at 21"), "message: {msg}");
    }

    /// PR-7: `prop_map` outputs shrink through the combinator — the
    /// minimal case is the mapping applied at the base's failure
    /// boundary, found by binary search on the *base* value.
    #[test]
    fn map_shrinks_through_the_combinator() {
        let strat = (0u32..1000).prop_map(|b| 2 * b + 1);
        // Fails iff v >= 101, i.e. base >= 50: minimal mapped value is
        // exactly 101 (odd by construction — only values in the image
        // of the mapping are ever proposed).
        let pred = |&v: &u32| -> TestCaseResult {
            if v >= 101 {
                Err(TestCaseError::Fail(format!("{v}")))
            } else {
                Ok(())
            }
        };
        let mut rng = TestRng::deterministic(0xA11CE);
        let tree = loop {
            let t = strat.new_tree(&mut rng);
            if t.current() >= 101 {
                break t;
            }
        };
        let (min, _, steps) = shrink_failure(tree, "seed".into(), &pred, 4096);
        assert_eq!(min, 101, "boundary through the mapping");
        assert!(steps >= 1);
    }

    /// PR-7: `prop_flat_map` shrinks both levels — the base value (the
    /// derived strategy is re-drawn from the RNG snapshot) and then
    /// the derived value with the base held fixed.
    #[test]
    fn flat_map_shrinks_base_and_inner() {
        let strat = (1usize..8).prop_flat_map(|n| crate::collection::vec(0u32..100, n));
        // Fails iff the vector has ≥ 3 elements: the base shrinks to
        // n = 3, then the (regenerated) elements shrink to the range
        // start.
        let pred = |v: &Vec<u32>| -> TestCaseResult {
            if v.len() >= 3 {
                Err(TestCaseError::Fail(format!("len {}", v.len())))
            } else {
                Ok(())
            }
        };
        let mut rng = TestRng::deterministic(0xF1A7);
        let tree = loop {
            let t = strat.new_tree(&mut rng);
            if t.current().len() >= 3 {
                break t;
            }
        };
        let (min, _, _) = shrink_failure(tree, "seed".into(), &pred, 4096);
        assert_eq!(min, std::vec![0, 0, 0], "minimal length, minimal elements");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// End-to-end: the macro reports the *minimal* failing case.
        /// The predicate fails for v ≥ 57, so the shrunk report must
        /// name exactly `(57,)`.
        #[test]
        #[should_panic(expected = "minimal failing case")]
        fn macro_reports_minimal_case(v in 0u32..1000) {
            prop_assert!(v < 57, "too big: {}", v);
        }

        #[test]
        #[should_panic(expected = "(57,)")]
        fn macro_shrinks_to_the_boundary(v in 0u32..1000) {
            prop_assert!(v < 57);
        }

        /// PR-7 end-to-end: a mapped strategy reports the minimal
        /// *mapped* case. `v = 2b` fails for v ≥ 99 ⇔ b ≥ 50, so the
        /// minimal report is exactly `(100,)`.
        #[test]
        #[should_panic(expected = "(100,)")]
        fn macro_shrinks_through_prop_map(v in (0u32..1000).prop_map(|b| 2 * b)) {
            prop_assert!(v < 99);
        }

        /// PR-7 end-to-end: a flat-mapped strategy shrinks the base
        /// (vector length) to the boundary and the regenerated
        /// elements to the range start.
        #[test]
        #[should_panic(expected = "([0, 0],)")]
        fn macro_shrinks_through_prop_flat_map(
            v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0u32..100, n))
        ) {
            prop_assert!(v.len() < 2);
        }
    }
}
