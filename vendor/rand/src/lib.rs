//! Offline vendored stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API used by this workspace:
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the
//! re-exported [`RngCore`] / [`SeedableRng`] traits and
//! [`rngs::SmallRng`] (xoshiro256++ here). Output streams are *not*
//! byte-compatible with upstream `rand`; every determinism contract in
//! this workspace is internal to this implementation.

#![warn(missing_docs)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Rejection-free Lemire-style multiply-shift is overkill
                // here; modulo bias is negligible for the spans used in
                // this workspace (all far below 2^32), but we still use
                // widening multiply for uniformity.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + f64::draw(rng) * (end - start)
    }
}

/// Extension methods over any [`RngCore`].
///
/// Implemented for unsized types too so `(&mut dyn RngCore).gen()`
/// works as it does with upstream `rand`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++ in this
    /// vendored implementation).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility: callers that ask for `StdRng`
    /// get the same xoshiro generator as [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&f));
            let u = rng.gen_range(5u32..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = (*dyn_rng).gen::<f64>();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
