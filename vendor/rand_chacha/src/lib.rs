//! Offline vendored stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha12Rng`]: a real ChaCha stream cipher core with 12
//! rounds driving a counter-mode keystream. Like the sibling vendored
//! `rand` crate, streams are deterministic per seed for *this*
//! implementation but are not byte-compatible with upstream
//! `rand_chacha` (the upstream crate pins word order / nonce layout
//! details this subset does not replicate).

#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

/// A ChaCha-based deterministic generator with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Cipher input state: constants, 256-bit key, 64-bit counter,
    /// 64-bit nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let v = self.block[self.cursor];
        self.cursor += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(123);
        let mut b = ChaCha12Rng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 50_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let rate = ones as f64 / (64.0 * n as f64);
        assert!((rate - 0.5).abs() < 0.005, "bit rate {rate}");
    }
}
