//! Offline vendored stand-in for the `rand_core` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *subset* of the `rand_core` 0.6 API that the
//! MAPS codebase uses: the [`RngCore`] object-safe generator trait and
//! the [`SeedableRng`] construction trait. Stream values are **not**
//! guaranteed to match the upstream crates — all determinism contracts
//! in this workspace are internal (same seed ⇒ same stream *for this
//! implementation*), which is all the simulators and tests rely on.

#![warn(missing_docs)]

/// The core trait every random-number generator implements.
///
/// Object safe: the market layer samples through `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanded with SplitMix64 —
    /// every bit of the seed affects every byte of the expanded seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (public so sibling vendor crates
/// and seeding schemes can share the same expansion).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b).wrapping_add(1));
    }
}
