//! Offline vendored stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of rayon's data-parallel API the workspace
//! uses — `par_iter()` / `into_par_iter()` over slices and ranges,
//! `map` / `for_each` / `collect` / `sum` — on top of
//! [`std::thread::scope`]. There is no persistent work-stealing pool:
//! each parallel consumption splits the index space into contiguous
//! chunks, spawns one scoped thread per chunk and concatenates results
//! **in index order** (so `collect` preserves ordering exactly like
//! upstream rayon).
//!
//! [`ThreadPoolBuilder`] is supported in the one shape the workspace
//! needs — `ThreadPoolBuilder::new().num_threads(n).build()?.install(f)`
//! — by overriding the thread count for the duration of `f` on the
//! calling thread.

#![warn(missing_docs)]

use std::cell::Cell;
use std::num::NonZeroUsize;

/// Everything needed to use the parallel iterator API.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<NonZeroUsize>> = const { Cell::new(None) };
}

/// The number of threads parallel consumptions on this thread will use.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE.with(|o| match o.get() {
        Some(n) => n.get(),
        None => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the supported
/// `num_threads → build → install` flow.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<NonZeroUsize>,
}

/// Error type of [`ThreadPoolBuilder::build`]; construction cannot
/// actually fail in this vendored implementation.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the number of threads; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = NonZeroUsize::new(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A configured "pool": in this shim, a thread-count override scope.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<NonZeroUsize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every parallel
    /// consumption started (on this thread) inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        THREAD_OVERRIDE.with(|o| {
            let prev = o.replace(self.num_threads);
            let out = f();
            o.set(prev);
            out
        })
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
            .map_or_else(crate::current_num_threads, NonZeroUsize::get)
    }
}

/// Splits `len` items into per-thread contiguous chunks, runs `work`
/// on each chunk concurrently and returns the per-chunk outputs in
/// chunk order. `work` receives `(chunk_start, chunk_end)`.
fn run_chunked<O, F>(len: usize, work: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize, usize) -> O + Sync,
{
    let threads = current_num_threads().min(len).max(1);
    if threads <= 1 || len <= 1 {
        return if len == 0 {
            Vec::new()
        } else {
            vec![work(0, len)]
        };
    }
    let chunk = len.div_ceil(threads);
    let bounds: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(len)))
        .filter(|(s, e)| s < e)
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(s, e)| {
                scope.spawn({
                    let work = &work;
                    move || work(s, e)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// An indexed parallel iterator: a length plus random access to each
/// item. All sources in this shim are indexed, which is what lets
/// `collect` preserve order deterministically.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced for each index.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces the item at `index`.
    ///
    /// # Safety
    /// Callers must invoke this **at most once per index** over the
    /// iterator's lifetime, with `index < par_len()`. Sources handing
    /// out exclusive access (e.g. [`ParSliceMut`]) rely on it: calling
    /// twice for one index would alias two `&mut` to one element. The
    /// chunked consumers below partition the index space disjointly
    /// and visit each index exactly once.
    unsafe fn par_get(&self, index: usize) -> Self::Item;

    /// Maps each item through `f` in parallel.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_chunked(self.par_len(), |s, e| {
            for i in s..e {
                // SAFETY: chunks are disjoint; each index visited once.
                f(unsafe { self.par_get(i) });
            }
        });
    }

    /// Collects all items, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums all items. Note: the reduction is chunked, so for floats
    /// the result depends on the thread count; use a fixed-block scheme
    /// at the call site when bit-stability across thread counts is
    /// required.
    fn sum<S>(self) -> S
    where
        S: ParallelSum<Self::Item>,
    {
        S::par_sum(self)
    }

    /// Accepted for API compatibility; chunking ignores the hint.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Map adaptor.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    O: Send,
    F: Fn(B::Item) -> O + Sync,
{
    type Item = O;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    unsafe fn par_get(&self, index: usize) -> O {
        // SAFETY: forwards the caller's once-per-index obligation.
        (self.f)(unsafe { self.base.par_get(index) })
    }
}

/// Collection types `collect` can target.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from a parallel iterator.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
        let chunks = run_chunked(par.par_len(), |s, e| {
            // SAFETY: chunks are disjoint; each index visited once.
            (s..e)
                .map(|i| unsafe { par.par_get(i) })
                .collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(par.par_len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Sum reductions `sum` can target.
pub trait ParallelSum<T: Send>: Send {
    /// Chunked parallel sum.
    fn par_sum<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

macro_rules! impl_parallel_sum {
    ($($t:ty),*) => {$(
        impl ParallelSum<$t> for $t {
            fn par_sum<P: ParallelIterator<Item = $t>>(par: P) -> Self {
                run_chunked(par.par_len(), |s, e| {
                    let mut acc: $t = Default::default();
                    for i in s..e {
                        // SAFETY: chunks are disjoint; each index once.
                        acc += unsafe { par.par_get(i) };
                    }
                    acc
                })
                .into_iter()
                .fold(Default::default(), |a, b| a + b)
            }
        }
    )*};
}

impl_parallel_sum!(f64, f32, u64, u32, usize, i64, i32);

/// Owned conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts self.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` over `&self`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `par_iter_mut()` over `&mut self` (chunked mutable slice access).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    unsafe fn par_get(&self, index: usize) -> &'a T {
        &self.items[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// Parallel iterator over a mutable slice (`par_iter_mut`).
///
/// Soundness rests on `par_get` being an `unsafe fn` whose contract
/// (at most once per index — see the trait docs) forbids handing the
/// same element out twice; the chunked consumers partition the index
/// space disjointly, so each element reaches exactly one worker.
pub struct ParSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by index (one `par_get` per index per
// the unsafe contract), so concurrent workers touch disjoint elements;
// `T: Send` lets the references cross threads.
unsafe impl<T: Send> Sync for ParSliceMut<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for ParSliceMut<'a, T> {
    type Item = &'a mut T;

    fn par_len(&self) -> usize {
        self.len
    }

    unsafe fn par_get(&self, index: usize) -> &'a mut T {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        // SAFETY: in-bounds (asserted); exclusive by the caller's
        // once-per-index obligation on this unsafe method.
        unsafe { &mut *self.ptr.add(index) }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Parallel iterator over `usize` / integer ranges.
pub struct ParRange {
    start: usize,
    len: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.len
    }

    unsafe fn par_get(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        for (i, &d) in doubled.iter().enumerate() {
            assert_eq!(d, 2 * i as u64);
        }
    }

    #[test]
    fn range_sum_matches_sequential() {
        let par: u64 = (0..1_000usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(par, 499_500);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..5_000usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5_000);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 1);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn par_iter_mut_updates_every_element_in_place() {
        let mut v: Vec<u64> = (0..10_000u64).collect();
        v.par_iter_mut().for_each(|x| *x *= 3);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 3 * i as u64);
        }
        // map/collect over mutable refs preserves index order.
        let doubled: Vec<u64> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(doubled[7], 42);
        let mut empty: Vec<u64> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x += 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: f64 = (0..0usize).into_par_iter().map(|_| 1.0f64).sum();
        assert_eq!(s, 0.0);
    }
}
