//! Offline vendored stand-in for the `serde` crate.
//!
//! No registry access means no real serde (and no proc-macro derive),
//! so this crate provides a much smaller contract that the workspace's
//! data types implement **manually**: serialization to / from an
//! in-memory JSON-like [`Value`] tree. The sibling vendored
//! `serde_json` crate renders and parses that tree as JSON text.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// An in-memory JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (always an `f64`; the workspace's numeric fields
    /// are floats or small counters that fit exactly).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; ordered map so output is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_number!(f64, f32, u64, u32, usize, i64, i32);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Convenience for building object values from field lists.
pub fn object<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Fetches and deserializes a required object field.
pub fn field<T: Deserialize>(value: &Value, key: &str) -> Result<T, DeError> {
    let v = value
        .get(key)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))?;
    T::from_value(v).map_err(|e| DeError(format!("field `{key}`: {}", e.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&2.0f64.to_value()).unwrap(),
            Some(2.0)
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn object_and_field_helpers() {
        let obj = object([("a", 1.0f64.to_value()), ("b", Value::Null)]);
        assert_eq!(field::<f64>(&obj, "a").unwrap(), 1.0);
        assert_eq!(field::<Option<f64>>(&obj, "b").unwrap(), None);
        assert!(field::<f64>(&obj, "missing").is_err());
    }
}
