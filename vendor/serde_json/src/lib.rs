//! Offline vendored stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored `serde` [`Value`] tree as JSON
//! text. Numbers round-trip exactly: they are written with Rust's
//! shortest-roundtrip `f64` formatting and integer-valued floats are
//! emitted without an exponent, so `Row`-style records compare equal
//! after a write/read cycle.

#![warn(missing_docs)]

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::io::Write;

/// Error for JSON parse/shape failures.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same f64.
                out.push_str(&format!("{n:?}"));
            } else {
                // JSON has no Inf/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = std::collections::BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = serde::object([
            ("name", Value::String("MAPS \"x\"\n".into())),
            ("revenue", Value::Number(4.075)),
            ("count", Value::Number(1250.0)),
            ("memory", Value::Null),
            (
                "xs",
                Value::Array(vec![Value::Number(1.0), Value::Bool(true)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 4.075, 1e-300, 123_456_789.123_456_78] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "text {text}");
        }
    }

    #[test]
    fn integer_valued_floats_have_no_exponent() {
        assert_eq!(to_string(&1250.0f64).unwrap(), "1250.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn parses_nested_json() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Array(vec![Value::Number(1.0), Value::Number(2.5), Value::Null])
        );
        assert_eq!(
            v.get("b").unwrap().get("c"),
            Some(&Value::String("d".into()))
        );
    }
}
